"""Don't-care-based node simplification (the ``full_simplify`` pass).

Processes the nodes one at a time: compute the local don't-care cover
(:func:`repro.dontcare.compute.local_dont_cares`), minimize the node cover
against it with :func:`repro.twolevel.incompletely.espresso_dc`, and keep
the result when it is cheaper.  Because each substitution individually
preserves all primary outputs (the don't-cares are exact for the current
network), the pass is safe in any order; we go in topological order and
recompute the don't-cares after every acceptance.
"""

from __future__ import annotations

from repro.boolfunc.cube import Cube
from repro.boolfunc.sop import Sop
from repro.dontcare.compute import local_dont_cares
from repro.network.network import Network
from repro.network.sweep import sweep
from repro.twolevel.incompletely import espresso_dc


def _drop_vacuous_fanins(network: Network, name: str, cover: Sop) -> tuple[list[str], Sop]:
    node = network.nodes[name]
    used = sorted({j for cube in cover.cubes for j in cube.literals()})
    if len(used) == len(node.fanins):
        return list(node.fanins), cover
    remap = {j: i for i, j in enumerate(used)}
    cubes = [
        Cube.from_literals(len(used), {remap[j]: p for j, p in c.literals().items()})
        for c in cover.cubes
    ]
    fanins = [node.fanins[j] for j in used]
    return fanins, Sop(len(used), cubes)


def full_simplify(
    network: Network,
    max_fanins: int = 10,
    max_inputs: int = 24,
    use_observability: bool = True,
) -> int:
    """Minimize every node against its network don't-cares.

    Returns the number of literals saved.  Nodes with more than
    ``max_fanins`` fanins are skipped (tabulation cost), as is the whole
    pass when the network has more than ``max_inputs`` primary inputs (the
    BDD image computations grow with the input count).
    """
    if len(network.inputs) > max_inputs:
        return 0
    saved = 0
    for name in network.topological_order():
        node = network.nodes.get(name)
        if node is None or not node.fanins or len(node.fanins) > max_fanins:
            continue
        onset, dc = local_dont_cares(network, name, use_observability=use_observability)
        if not dc.cubes:
            continue
        minimized = espresso_dc(onset, dc)
        if minimized.num_literals() < node.cover.num_literals() or len(
            minimized.cubes
        ) < len(node.cover.cubes):
            before = node.cover.num_literals()
            fanins, cover = _drop_vacuous_fanins(network, name, minimized)
            network.replace_cover(name, fanins, cover)
            saved += before - cover.num_literals()
    if saved:
        sweep(network)
    return saved
