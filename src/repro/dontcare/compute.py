"""BDD computation of network don't-cares.

For a node ``n`` with fanins ``y_1..y_j`` (functions of the primary inputs
``x``), the *local don't-care set* over the fanin space is

    DC(y)  =  ~EX x . R(y, x)                      (satisfiability DCs)
            | ~EX x . (R(y, x) & care(x))          (observability DCs)

where ``R(y, x) = AND_i (y_i == fanin_i(x))`` is the fanin image relation
and ``care(x)`` is the complement of the node's ODC: the inputs under which
the node's value is observable at some primary output.  A fanin vertex
``y`` is a don't-care exactly when no *observable* input assignment
produces it, so both classical don't-care families fall out of one
quantification.
"""

from __future__ import annotations

from repro.bdd.manager import BDD, FALSE, TRUE
from repro.boolfunc.sop import Sop
from repro.boolfunc.truthtable import TruthTable
from repro.network.network import Network


def _signal_functions(
    network: Network, bdd: BDD, replace: str | None = None, t_var: int | None = None
) -> dict[str, int]:
    """PI-level BDD of every signal; node ``replace`` becomes the literal ``t_var``."""
    values: dict[str, int] = {}
    for name in network.inputs:
        values[name] = bdd.var(bdd.level_of(name))
    for name in network.topological_order():
        if name == replace:
            assert t_var is not None
            values[name] = t_var
            continue
        node = network.nodes[name]
        acc = FALSE
        for cube in node.cover.cubes:
            term = TRUE
            for j, polarity in cube.literals().items():
                fn = values[node.fanins[j]]
                term = bdd.apply_and(term, fn if polarity else bdd.apply_not(fn))
            acc = bdd.apply_or(acc, term)
        values[name] = acc
    return values


def observability_care_set(network: Network, name: str, bdd: BDD) -> int:
    """Inputs under which node ``name`` is observable at some output.

    ``bdd`` must already hold one variable per primary input (named after
    it); a fresh variable ``t`` is appended for the node.  Returns the care
    set as a BDD over the primary-input levels (the ODC is its complement).
    """
    t_lit = bdd.add_var(f"@t_{name}_{bdd.num_vars}")
    t_level = bdd.level(t_lit)
    values = _signal_functions(network, bdd, replace=name, t_var=t_lit)
    care = FALSE
    for out in network.outputs:
        f = values[out]
        diff = bdd.apply_xor(
            bdd.restrict(f, {t_level: False}), bdd.restrict(f, {t_level: True})
        )
        care = bdd.apply_or(care, diff)
        if care == TRUE:
            break
    return care


def local_dont_cares(
    network: Network, name: str, use_observability: bool = True
) -> tuple[Sop, Sop]:
    """(onset, don't-care) covers of node ``name`` over its fanin space.

    The onset is the node's current cover; the don't-care cover collects the
    fanin vertices that are unproducible (SDC) or only producible under
    unobservable inputs (ODC).  Works by exhaustive tabulation of the fanin
    space, so it is intended for nodes with a handful of fanins (the usual
    situation after pre-structuring).
    """
    node = network.nodes[name]
    j = len(node.fanins)
    if j > 12:
        raise ValueError(f"node {name!r} has {j} fanins; local DC tabulation capped at 12")

    bdd = BDD()
    for pi in network.inputs:
        bdd.add_var(pi)
    if use_observability and name not in network.outputs:
        care = observability_care_set(network, name, bdd)
    else:
        care = TRUE
    values = _signal_functions(network, bdd)

    fanin_nodes = [values[f] for f in node.fanins]
    dc_bits = 0
    for vertex in range(1 << j):
        producible = care
        for i, fn in enumerate(fanin_nodes):
            lit = fn if (vertex >> i) & 1 else bdd.apply_not(fn)
            producible = bdd.apply_and(producible, lit)
            if producible == FALSE:
                break
        if producible == FALSE:
            dc_bits |= 1 << vertex
    dc_table = TruthTable(j, dc_bits)
    return node.cover, Sop.from_truthtable(dc_table)
