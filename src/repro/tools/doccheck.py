"""Docstring-coverage gate: every public definition documents itself.

``docs/PAPER_MAP.md`` anchors paper concepts to ``path:line`` of defining
functions, and ``docs/RELIABILITY.md`` describes the engine's recovery
semantics by API name -- both rot silently when code moves or gains
undocumented entry points.  This gate makes the rot loud: it walks a set
of files and fails when a module, public class, or public function lacks
a docstring.

Run it as a module (CI does)::

    python -m repro.tools.doccheck              # the default target set
    python -m repro.tools.doccheck src/repro    # or explicit paths

Rules:

- every module needs a module docstring;
- every public ``class``/``def``/``async def`` (name not starting with
  ``_``, plus ``__init__`` with a non-trivial body) needs a docstring;
- definitions nested inside functions are exempt (implementation detail);
- a trailing ``# doccheck: skip`` comment on the ``def``/``class`` line
  exempts one definition.

The default target set is the reliability-critical surface the docs
anchor into: ``src/repro/engine/`` and ``src/repro/bdd/transfer.py``.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

#: Files/directories checked when no paths are given (repo-relative).
DEFAULT_TARGETS = (
    "src/repro/engine",
    "src/repro/cache",
    "src/repro/serve",
    "src/repro/targets",
    "src/repro/bdd/transfer.py",
    "src/repro/bdd/arena.py",
    "src/repro/bdd/backend.py",
    "src/repro/bdd/canon.py",
)

_SKIP_PRAGMA = "# doccheck: skip"


def _is_trivial(body: list[ast.stmt]) -> bool:
    """Whether a function body is ``pass``/``...`` only (nothing to document)."""
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in body
    )


def _wants_docstring(node: ast.AST) -> bool:
    """Whether this class/function definition must carry a docstring."""
    name = node.name
    if name == "__init__":
        return not _is_trivial(node.body)
    if name.startswith("_") :
        return False
    return True


def check_file(path: Path) -> list[str]:
    """All docstring violations in one source file, as ``path:line: msg``."""
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    problems: list[str] = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}:1: module has no docstring")

    def visit(node: ast.AST, qualname: str, in_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = f"{qualname}.{child.name}" if qualname else child.name
                pragma = _SKIP_PRAGMA in lines[child.lineno - 1]
                if (
                    not in_function
                    and not pragma
                    and _wants_docstring(child)
                    and ast.get_docstring(child) is None
                ):
                    kind = "class" if isinstance(child, ast.ClassDef) else "function"
                    problems.append(
                        f"{path}:{child.lineno}: "
                        f"{kind} {name!r} has no docstring"
                    )
                visit(
                    child,
                    name,
                    in_function or not isinstance(child, ast.ClassDef),
                )
            else:
                visit(child, qualname, in_function)

    visit(tree, "", False)
    return problems


def iter_source_files(targets: list[str], root: Path) -> list[Path]:
    """Expand target paths into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for target in targets:
        path = Path(target)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py" and path.exists():
            files.append(path)
        else:
            raise FileNotFoundError(f"doccheck target not found: {target}")
    return files


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.doccheck",
        description="fail when public definitions lack docstrings",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to check (default: {', '.join(DEFAULT_TARGETS)})",
    )
    args = parser.parse_args(argv)

    # Resolve defaults relative to the repo root (src/../..), so the gate
    # works from any working directory in CI.
    root = Path(__file__).resolve().parents[3]
    targets = args.paths or list(DEFAULT_TARGETS)
    try:
        files = iter_source_files(targets, root)
    except FileNotFoundError as exc:
        print(f"doccheck: {exc}", file=sys.stderr)
        return 2

    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    checked = len(files)
    if problems:
        print(
            f"doccheck: {len(problems)} missing docstring(s) "
            f"across {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"doccheck: OK ({checked} file(s) fully documented)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
