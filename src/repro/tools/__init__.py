"""Development-support tools shipped with the package.

These are repo-maintenance utilities, not part of the synthesis flow:

- :mod:`repro.tools.doccheck` -- docstring-coverage gate run in CI
  (``python -m repro.tools.doccheck``).
"""
