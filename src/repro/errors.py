"""Exception hierarchy of the repro package.

Library code raises real exceptions on every load-bearing invariant --
``assert`` statements vanish under ``python -O`` and turned broken internal
state into crashes far from the cause.  All domain errors derive from
:class:`ReproError` so callers can catch the whole family at the flow
boundary while still matching specific failures.

The classes live in their own dependency-free module so every layer (BDD
engine, IMODEC, partitioning, flow, CLI, observability) can import them
without cycles.
"""

from __future__ import annotations


class ReproError(RuntimeError):
    """Base class of all domain errors raised by the repro package."""


class DecompositionError(ReproError):
    """The decomposition machinery reached an inconsistent state.

    Raised when an internal invariant of the implicit algorithm (Lmax layer
    computation, partial-assignment refinement, bound-set scoring) is
    violated -- always a bug or an unsupported input, never a routine
    condition.
    """


class VerificationError(ReproError):
    """An equivalence check failed.

    Carries the failing output and a counterexample input vector when the
    check produced one (the exact BDD check always does).
    """

    def __init__(
        self,
        message: str,
        failing_output: str | None = None,
        counterexample: dict[str, bool] | None = None,
    ) -> None:
        super().__init__(message)
        self.failing_output = failing_output
        self.counterexample = counterexample


class FaultInjected(ReproError):
    """A planned fault from :mod:`repro.engine.faults` fired.

    Raised inside a worker (``drop`` faults, the parent-side form of
    ``kill``) or in the coordinator (``abort`` faults, which simulate the
    parent dying right after a checkpoint flush).  Never raised unless a
    fault plan was explicitly configured.

    Attributes:
        kind: the fault kind that fired (``kill``/``drop``/``abort``).
        group: submission ordinal of the targeted group.
    """

    def __init__(self, kind: str, group: int) -> None:
        super().__init__(f"injected fault: {kind} on group {group}")
        self.kind = kind
        self.group = group

    def __reduce__(self):
        # Exceptions pickle as (cls, self.args) by default; args holds the
        # formatted message, not (kind, group), so a drop fault crossing
        # the process-pool boundary would fail to unpickle in the pool's
        # result thread -- which *breaks the pool* instead of failing one
        # task.
        return (FaultInjected, (self.kind, self.group))


class GroupFailedError(ReproError):
    """One output group failed permanently despite retries and degradation.

    Raised by the process executor after a group exhausted its retry
    budget and (when enabled) the serial in-parent fallback also failed.
    The batch layer catches it per circuit so one poisoned circuit cannot
    abort the whole batch (see ``docs/RELIABILITY.md``).

    Attributes:
        group: submission ordinal of the failed group.
        failures: structured per-attempt failure records, each a dict with
            ``kind``/``group``/``attempt``/``error``/``seconds`` entries.
    """

    def __init__(self, group: int, failures: list[dict]) -> None:
        last = failures[-1]["error"] if failures else "unknown"
        super().__init__(
            f"group {group} failed permanently after "
            f"{len(failures)} attempt(s): {last}"
        )
        self.group = group
        self.failures = failures

    def __reduce__(self):
        # Reconstruct from (group, failures), not the formatted message
        # (see FaultInjected.__reduce__).
        return (GroupFailedError, (self.group, self.failures))


class RunInterrupted(ReproError):
    """The run was cancelled mid-drain and stopped at a safe boundary.

    Raised by the executors when a cancellation was requested
    (:func:`repro.engine.executors.request_cancel`) -- by the CLI's
    SIGINT/SIGTERM handlers or by the server's graceful drain.  By the
    time it propagates, outstanding pool futures have been cancelled and
    any configured checkpoint has been flushed, so the run can be resumed
    with ``--resume`` to byte-identical output.  The CLI maps it to exit
    code 130 (the conventional interrupted-by-signal status).
    """


class RemoteTaskError(ReproError):
    """A remotely-executed group failed on or behind the broker.

    Wraps worker-side exceptions that travel back as typed error
    envelopes (see :mod:`repro.engine.remote.wire`) and broker-side
    synthetic failures such as ``LeaseExpired`` (a worker's host died or
    partitioned mid-group).  The remote executor's retry ladder treats
    it exactly like any worker exception: retry with backoff, then
    degrade to the in-parent serial path.
    """


class CheckpointError(ReproError):
    """A checkpoint file cannot be used to resume the current run.

    Raised when the file is unreadable, carries an unknown schema, or was
    written by a run with an incompatible flow configuration (the config
    digest differs) -- see ``docs/RELIABILITY.md`` for the compatibility
    rules.
    """


class BudgetExceeded(ReproError):
    """A traced span blew past its soft resource budget.

    Structured so callers can degrade gracefully (fall back to a cheaper
    strategy, return partial results, abort one group instead of the whole
    run) rather than letting a pathological instance run unbounded.

    Attributes:
        span: name of the span whose budget was exceeded.
        metric: ``"seconds"`` or ``"nodes"``.
        limit: the configured threshold.
        actual: the observed value at the enforcement point.
    """

    def __init__(self, span: str, metric: str, limit: float, actual: float) -> None:
        super().__init__(
            f"span {span!r} exceeded its {metric} budget: {actual:g} > {limit:g}"
        )
        self.span = span
        self.metric = metric
        self.limit = limit
        self.actual = actual

    def __reduce__(self):
        # Reconstructible across process boundaries (see
        # FaultInjected.__reduce__).
        return (BudgetExceeded, (self.span, self.metric, self.limit, self.actual))
