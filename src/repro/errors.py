"""Exception hierarchy of the repro package.

Library code raises real exceptions on every load-bearing invariant --
``assert`` statements vanish under ``python -O`` and turned broken internal
state into crashes far from the cause.  All domain errors derive from
:class:`ReproError` so callers can catch the whole family at the flow
boundary while still matching specific failures.

The classes live in their own dependency-free module so every layer (BDD
engine, IMODEC, partitioning, flow, CLI, observability) can import them
without cycles.
"""

from __future__ import annotations


class ReproError(RuntimeError):
    """Base class of all domain errors raised by the repro package."""


class DecompositionError(ReproError):
    """The decomposition machinery reached an inconsistent state.

    Raised when an internal invariant of the implicit algorithm (Lmax layer
    computation, partial-assignment refinement, bound-set scoring) is
    violated -- always a bug or an unsupported input, never a routine
    condition.
    """


class VerificationError(ReproError):
    """An equivalence check failed.

    Carries the failing output and a counterexample input vector when the
    check produced one (the exact BDD check always does).
    """

    def __init__(
        self,
        message: str,
        failing_output: str | None = None,
        counterexample: dict[str, bool] | None = None,
    ) -> None:
        super().__init__(message)
        self.failing_output = failing_output
        self.counterexample = counterexample


class BudgetExceeded(ReproError):
    """A traced span blew past its soft resource budget.

    Structured so callers can degrade gracefully (fall back to a cheaper
    strategy, return partial results, abort one group instead of the whole
    run) rather than letting a pathological instance run unbounded.

    Attributes:
        span: name of the span whose budget was exceeded.
        metric: ``"seconds"`` or ``"nodes"``.
        limit: the configured threshold.
        actual: the observed value at the enforcement point.
    """

    def __init__(self, span: str, metric: str, limit: float, actual: float) -> None:
        super().__init__(
            f"span {span!r} exceeded its {metric} budget: {actual:g} > {limit:g}"
        )
        self.span = span
        self.metric = metric
        self.limit = limit
        self.actual = actual
