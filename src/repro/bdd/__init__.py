"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

This package is a self-contained BDD implementation built for the IMODEC
reproduction.  It provides:

- :class:`~repro.bdd.manager.BDD` -- the dict-backed node manager (unique
  table, ITE with a computed table, quantification, composition,
  satisfiability services); the reference ``object`` backend.
- :mod:`~repro.bdd.arena` -- the ``arena`` backend: the same manager API
  over flat numpy arrays with iterative integer kernels.
- :mod:`~repro.bdd.backend` -- the backend seam (:func:`make_manager`)
  through which flow code constructs managers by name.
- :class:`~repro.bdd.function.Function` -- an operator-overloaded handle that
  pairs a node id with its manager, so client code can write ``f & g | ~h``.
- :mod:`~repro.bdd.satcount` -- model counting over explicit variable scopes.
- :mod:`~repro.bdd.reorder` -- sifting-based dynamic variable reordering.
- :mod:`~repro.bdd.dump` -- Graphviz/dot export for debugging.

All algorithms in :mod:`repro.imodec` operate on this package; no external
BDD library is required (the arena backend additionally needs numpy).
"""

from repro.bdd.backend import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    BackendUnavailable,
    make_manager,
)
from repro.bdd.function import Function
from repro.bdd.manager import BDD

__all__ = [
    "BACKEND_NAMES",
    "BDD",
    "BackendUnavailable",
    "DEFAULT_BACKEND",
    "Function",
    "make_manager",
]
