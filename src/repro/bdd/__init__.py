"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

This package is a self-contained BDD implementation built for the IMODEC
reproduction.  It provides:

- :class:`~repro.bdd.manager.BDD` -- the node manager (unique table, ITE with
  a computed table, quantification, composition, satisfiability services).
- :class:`~repro.bdd.function.Function` -- an operator-overloaded handle that
  pairs a node id with its manager, so client code can write ``f & g | ~h``.
- :mod:`~repro.bdd.satcount` -- model counting over explicit variable scopes.
- :mod:`~repro.bdd.reorder` -- sifting-based dynamic variable reordering.
- :mod:`~repro.bdd.dump` -- Graphviz/dot export for debugging.

All algorithms in :mod:`repro.imodec` operate on this package; no external
BDD library is required.
"""

from repro.bdd.function import Function
from repro.bdd.manager import BDD

__all__ = ["BDD", "Function"]
