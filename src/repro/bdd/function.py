"""Operator-overloaded handle for BDD nodes.

A :class:`Function` pairs a node id with its manager so that client code can
combine functions with Python operators::

    bdd = BDD()
    x = Function.var(bdd, "x")
    y = Function.var(bdd, "y")
    f = (x & ~y) | (y ^ x)
    assert f.is_sat()

Equality between :class:`Function` objects is *semantic* equality, which the
ROBDD canonicity reduces to node-id equality.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.bdd.manager import BDD, FALSE, TRUE


class Function:
    """A Boolean function rooted at a node of a :class:`BDD` manager."""

    __slots__ = ("bdd", "node")

    def __init__(self, bdd: BDD, node: int) -> None:
        self.bdd = bdd
        self.node = node

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def var(cls, bdd: BDD, name: str) -> "Function":
        """Literal of the variable called ``name``, creating it if needed."""
        if name in bdd._name_to_level:
            return cls(bdd, bdd.var(bdd.level_of(name)))
        return cls(bdd, bdd.add_var(name))

    @classmethod
    def true(cls, bdd: BDD) -> "Function":
        """The constant-true function."""
        return cls(bdd, TRUE)

    @classmethod
    def false(cls, bdd: BDD) -> "Function":
        """The constant-false function."""
        return cls(bdd, FALSE)

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------

    def _coerce(self, other: "Function | bool") -> int:
        if isinstance(other, Function):
            if other.bdd is not self.bdd:
                raise ValueError("functions belong to different BDD managers")
            return other.node
        if isinstance(other, bool):
            return TRUE if other else FALSE
        return NotImplemented  # type: ignore[return-value]

    def __and__(self, other: "Function | bool") -> "Function":
        node = self._coerce(other)
        return Function(self.bdd, self.bdd.apply_and(self.node, node))

    __rand__ = __and__

    def __or__(self, other: "Function | bool") -> "Function":
        node = self._coerce(other)
        return Function(self.bdd, self.bdd.apply_or(self.node, node))

    __ror__ = __or__

    def __xor__(self, other: "Function | bool") -> "Function":
        node = self._coerce(other)
        return Function(self.bdd, self.bdd.apply_xor(self.node, node))

    __rxor__ = __xor__

    def __invert__(self) -> "Function":
        return Function(self.bdd, self.bdd.apply_not(self.node))

    def implies(self, other: "Function | bool") -> "Function":
        """Implication ``self -> other``."""
        node = self._coerce(other)
        return Function(self.bdd, self.bdd.apply_implies(self.node, node))

    def ite(self, then: "Function | bool", otherwise: "Function | bool") -> "Function":
        """``self ? then : otherwise``."""
        t = self._coerce(then)
        e = self._coerce(otherwise)
        return Function(self.bdd, self.bdd.ite(self.node, t, e))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Function):
            return self.bdd is other.bdd and self.node == other.node
        if isinstance(other, bool):
            return self.node == (TRUE if other else FALSE)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((id(self.bdd), self.node))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def is_true(self) -> bool:
        """True iff this is the constant-true function."""
        return self.node == TRUE

    @property
    def is_false(self) -> bool:
        """True iff this is the constant-false function."""
        return self.node == FALSE

    def is_sat(self) -> bool:
        """True iff the function has at least one satisfying assignment."""
        return self.node != FALSE

    def size(self) -> int:
        """Number of BDD nodes of this function."""
        return self.bdd.size(self.node)

    def support(self) -> set[str]:
        """Names of the variables this function depends on."""
        return {self.bdd.var_name(lvl) for lvl in self.bdd.support(self.node)}

    def support_levels(self) -> set[int]:
        """Levels of the variables this function depends on."""
        return self.bdd.support(self.node)

    def __call__(self, **values: bool) -> bool:
        """Evaluate with variables given by name."""
        assignment = {self.bdd.level_of(name): val for name, val in values.items()}
        return self.bdd.eval(self.node, assignment)

    def eval_levels(self, assignment: Mapping[int, bool]) -> bool:
        """Evaluate with variables given by level."""
        return self.bdd.eval(self.node, assignment)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------

    def restrict(self, **values: bool) -> "Function":
        """Fix named variables to constants."""
        assignment = {self.bdd.level_of(name): val for name, val in values.items()}
        return Function(self.bdd, self.bdd.restrict(self.node, assignment))

    def cofactor(self, name: str, value: bool) -> "Function":
        """Shannon cofactor w.r.t. the named variable."""
        return Function(self.bdd, self.bdd.cofactor(self.node, self.bdd.level_of(name), value))

    def exists(self, *names: str) -> "Function":
        """Existentially quantify the named variables."""
        levels = [self.bdd.level_of(n) for n in names]
        return Function(self.bdd, self.bdd.exists(self.node, levels))

    def forall(self, *names: str) -> "Function":
        """Universally quantify the named variables."""
        levels = [self.bdd.level_of(n) for n in names]
        return Function(self.bdd, self.bdd.forall(self.node, levels))

    def compose(self, substitution: Mapping[str, "Function"]) -> "Function":
        """Substitute functions for named variables (simultaneously)."""
        sub = {self.bdd.level_of(name): fn.node for name, fn in substitution.items()}
        return Function(self.bdd, self.bdd.compose(self.node, sub))

    # ------------------------------------------------------------------
    # models
    # ------------------------------------------------------------------

    def sat_one(self) -> dict[str, bool] | None:
        """One satisfying partial assignment by variable name, or None."""
        raw = self.bdd.sat_one(self.node)
        if raw is None:
            return None
        return {self.bdd.var_name(lvl): val for lvl, val in raw.items()}

    def iter_sat(self, names: Sequence[str]) -> Iterator[dict[str, bool]]:
        """All satisfying total assignments over the named scope."""
        levels = [self.bdd.level_of(n) for n in names]
        for model in self.bdd.iter_sat(self.node, levels):
            yield {self.bdd.var_name(lvl): val for lvl, val in model.items()}

    def count(self, nvars: int | None = None) -> int:
        """Number of satisfying assignments over the first ``nvars`` variables.

        Defaults to the whole manager scope.
        """
        from repro.bdd.satcount import satcount

        if nvars is None:
            nvars = self.bdd.num_vars
        return satcount(self.bdd, self.node, range(nvars))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_true:
            return "Function(TRUE)"
        if self.is_false:
            return "Function(FALSE)"
        return f"Function(node={self.node}, size={self.size()})"
