"""Canonical fingerprints of multiple-output functions (NPN-lite).

The result cache (:mod:`repro.cache`) keys each output group by a fingerprint
that is invariant under the renamings a function undergoes between runs:

- **support normalization** -- only the levels the group actually depends on
  enter the key, relabeled ``0..n-1`` in order of appearance, so the same
  cone keys identically regardless of where its inputs sit in the manager;
- **input permutation / polarity and output polarity** (the "NPN" part) --
  a heuristic canonical form so the same function reached under permuted or
  complemented inputs, or as its own complement, still keys identically.

The canonicalization is *NPN-lite*: candidate transforms are narrowed by
semantic (transform-invariant) signatures -- output phase by model count,
input phase and order by cofactor-count signatures -- and only the residual
ties are broken by enumerating candidates and taking the lexicographically
least serialized BDD.  When the tie space exceeds ``max_candidates`` (highly
symmetric functions: XORs, parity slices) or the canonical rebuild exceeds
``node_budget``, :func:`canonical_form` falls back to the *raw* key: the
support-normalized DAG in the caller's variable order.  Raw keys are still
rename-invariant, just not permutation/polarity-invariant -- a cache miss,
never an incorrect hit.  The :attr:`CanonicalForm.exact` flag records which
path produced the key.

Soundness does not rest on the heuristic: the cache layer
(:mod:`repro.cache.group`) re-verifies every hit against the requested
functions before using it, so even a key collision degrades to a miss.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from itertools import permutations, product
from typing import Iterator, Sequence

from repro.bdd.manager import BDD, FALSE, TRUE

#: Default cap on enumerated tie-breaking candidates before falling back.
MAX_CANDIDATES = 64

#: Default cap on scratch-manager nodes while rebuilding a candidate.
NODE_BUDGET = 100_000


@dataclass(frozen=True)
class CanonicalForm:
    """A canonical key plus the transform that produced it.

    The transform maps the *caller's* function vector onto the canonical
    one; the cache layer inverts it to map a stored result back onto the
    caller's variables.

    Attributes:
        key: hex digest, prefixed ``npn:`` (exact canonical form) or
            ``raw:`` (support-normalized fallback).
        levels: the support union of the vector, as sorted manager levels;
            position ``i`` in this tuple is "support index ``i``".
        perm: canonical position ``p`` holds support index ``perm[p]``
            (identity for the fallback).
        input_phase: per canonical position, 1 iff the input is
            complemented on the way into the canonical function.
        output_phase: per root, 1 iff the canonical function is the
            complement of the caller's root.
        exact: True iff the key came from the full NPN-lite canonical form
            (two exact forms of NPN-equivalent vectors always share a key;
            raw keys only match when support order and polarities align).
    """

    key: str
    levels: tuple[int, ...]
    perm: tuple[int, ...]
    input_phase: tuple[int, ...]
    output_phase: tuple[int, ...]
    exact: bool


def dag_bytes(bdd: BDD, roots: Sequence[int], level_index: dict[int, int]) -> bytes:
    """Deterministic serialization of the DAG of ``roots`` for hashing.

    ``level_index`` renames manager levels to dense support indices so the
    bytes do not depend on where the cone sits in the manager.  Node order
    is the child-before-parent discovery order of the root walk, which is a
    function of the DAG shape only -- two managers holding equal functions
    over identically-indexed levels serialize identically.
    """
    local: dict[int, int] = {0: 0}
    parts: list[str] = []

    def visit(edge: int) -> None:
        stack = [edge]
        while stack:
            e = stack.pop()
            idx = e >> 1
            if idx in local:
                continue
            low = bdd.low(e & ~1)
            high = bdd.high(e & ~1)
            lo_i, hi_i = low >> 1, high >> 1
            if lo_i in local and hi_i in local:
                local[idx] = len(local)
                parts.append(
                    f"{level_index[bdd.level(e)]},"
                    f"{(local[lo_i] << 1) | (low & 1)},"
                    f"{(local[hi_i] << 1) | (high & 1)};"
                )
            else:
                stack.append(e)
                if hi_i not in local:
                    stack.append(high)
                if lo_i not in local:
                    stack.append(low)

    for root in roots:
        visit(root)
    parts.append("|")
    parts.append(",".join(str((local[r >> 1] << 1) | (r & 1)) for r in roots))
    return "".join(parts).encode("ascii")


def _digest(prefix: str, blob: bytes) -> str:
    """Shorten ``blob`` to a 128-bit prefixed hex key."""
    return prefix + hashlib.sha256(blob).hexdigest()[:32]


def _symmetric(bdd: BDD, roots: Sequence[int], l1: int, l2: int) -> bool:
    """True iff every root is invariant under swapping levels ``l1, l2``."""
    for r in roots:
        a = bdd.cofactor(bdd.cofactor(r, l1, False), l2, True)
        b = bdd.cofactor(bdd.cofactor(r, l1, True), l2, False)
        if a != b:
            return False
    return True


def _tie_orders(
    bdd: BDD, roots: Sequence[int], group: list[int], levels: tuple[int, ...]
) -> list[tuple[int, ...]] | None:
    """Orderings of one signature-tie ``group`` worth enumerating.

    Support indices whose variables are pairwise (positively) symmetric in
    every root are interchangeable -- swapping them never changes the
    canonical bytes -- so only the *multiset permutations* of the symmetry
    classes are enumerated: every arrangement of class labels, including
    interleavings, with each class's members filling its slots in a fixed
    order.  Contiguity must NOT be assumed: a transform can skew a symmetry
    into a polarity-crossed one this detector misses, and the counterpart
    instance then enumerates interleaved arrangements -- both instances must
    cover the same distinct canonical functions or the minimum diverges.

    Returns None when the group is too large to enumerate (caller falls
    back to the raw key).
    """
    if len(group) > 8:
        return None
    blocks: list[list[int]] = []
    for i in group:
        for block in blocks:
            if _symmetric(bdd, roots, levels[block[0]], levels[i]):
                block.append(i)
                break
        else:
            blocks.append([i])
    if len(blocks) == 1:
        return [tuple(group)]
    labels: list[int] = []
    for b, block in enumerate(blocks):
        labels.extend([b] * len(block))
    seen: set[tuple[int, ...]] = set()
    orders: list[tuple[int, ...]] = []
    for seq in permutations(labels):
        if seq in seen:
            continue
        seen.add(seq)
        cursors = [iter(block) for block in blocks]
        orders.append(tuple(next(cursors[label]) for label in seq))
    return orders


def _candidates(
    bdd: BDD,
    roots: Sequence[int],
    levels: tuple[int, ...],
    cof: list[list[tuple[int, int]]],
    phase_fixed: list[int],
    phase_tied: list[int],
    max_candidates: int,
) -> Iterator[tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]] | None:
    """Enumerate ``(perm, input_phase, output_phase)`` candidate transforms.

    Returns None (caller falls back) as soon as the candidate count
    provably exceeds ``max_candidates``.  Candidates are narrowed by
    transform-invariant signatures; see the module docstring.
    """
    n, m = len(levels), len(roots)
    half = 1 << (n - 1)
    if len(phase_tied) > 10 or (1 << len(phase_tied)) > max_candidates:
        return None

    collected: list[tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]] = []
    for tied_bits in product((0, 1), repeat=len(phase_tied)):
        phi = list(phase_fixed)
        for j, bit in zip(phase_tied, tied_bits):
            phi[j] = bit
        # Phase-adjusted cofactor counts: complementing output j maps a
        # count c over n-1 free variables to 2^(n-1) - c.
        sigs: list[tuple] = []
        psi_base: list[int] = []
        psi_tied: list[int] = []
        for i in range(n):
            a = tuple(
                half - cof[i][j][0] if phi[j] else cof[i][j][0] for j in range(m)
            )
            b = tuple(
                half - cof[i][j][1] if phi[j] else cof[i][j][1] for j in range(m)
            )
            if a < b:
                psi_base.append(0)
            elif b < a:
                psi_base.append(1)
            else:
                psi_base.append(0)
                psi_tied.append(i)
            sigs.append(min((a, b), (b, a)))
        if len(psi_tied) > 10 or (1 << len(psi_tied)) > max_candidates:
            return None

        # Sort support indices by signature; equal signatures form tie
        # groups whose internal order must be enumerated.
        order = sorted(range(n), key=lambda i: sigs[i])
        groups: list[list[int]] = []
        for i in order:
            if groups and sigs[groups[-1][0]] == sigs[i]:
                groups[-1].append(i)
            else:
                groups.append([i])
        expanded: list[list[tuple[int, ...]]] = []
        count = 1 << len(psi_tied)
        for g in groups:
            if len(g) == 1:
                expanded.append([tuple(g)])
                continue
            orders = _tie_orders(bdd, roots, g, levels)
            if orders is None:
                return None
            count *= len(orders)
            if count > max_candidates:
                return None
            expanded.append(orders)
        if len(collected) + count > max_candidates:
            return None

        for pick in product(*expanded):
            perm = tuple(i for part in pick for i in part)
            for psi_bits in product((0, 1), repeat=len(psi_tied)):
                psi_of = dict(zip(psi_tied, psi_bits))
                input_phase = tuple(
                    psi_of.get(i, psi_base[i]) for i in perm
                )
                collected.append((perm, input_phase, tuple(phi)))
    return iter(collected)


def _rebuild_bytes(
    bdd: BDD,
    roots: Sequence[int],
    levels: tuple[int, ...],
    perm: tuple[int, ...],
    input_phase: tuple[int, ...],
    output_phase: tuple[int, ...],
    node_budget: int,
) -> bytes | None:
    """Serialize the transformed vector, rebuilt in canonical variable order.

    A fresh object-backend scratch manager hosts variables ``x0..x(n-1)``
    in canonical order; the caller's DAG is transferred bottom-up with
    ``ite``, folding the input/output phases in.  ROBDD canonicity then
    makes the serialization a function of the transformed vector alone.
    Returns None when the rebuild exceeds ``node_budget`` scratch nodes.
    """
    n = len(levels)
    scratch = BDD()
    scratch.add_vars(n, prefix="x")
    pos_of_level = {levels[perm[p]]: p for p in range(n)}
    lit = [scratch.var(p) ^ input_phase[p] for p in range(n)]
    memo: dict[int, int] = {0: FALSE}

    def walk(e: int) -> int | None:
        idx = e >> 1
        got = memo.get(idx)
        if got is None:
            reg = e & ~1
            lo = walk(bdd.low(reg))
            if lo is None:
                return None
            hi = walk(bdd.high(reg))
            if hi is None:
                return None
            got = scratch.ite(lit[pos_of_level[bdd.level(reg)]], hi, lo)
            memo[idx] = got
            if scratch.num_nodes > node_budget:
                return None
        return got ^ (e & 1)

    canon_roots: list[int] = []
    for r, phase in zip(roots, output_phase):
        t = walk(r)
        if t is None:
            return None
        canon_roots.append(t ^ phase)
    return dag_bytes(scratch, canon_roots, {p: p for p in range(n)})


def canonical_form(
    bdd: BDD,
    roots: Sequence[int],
    *,
    max_candidates: int = MAX_CANDIDATES,
    node_budget: int = NODE_BUDGET,
) -> CanonicalForm:
    """Canonical fingerprint of the ordered function vector ``roots``.

    Exact forms of NPN-equivalent vectors (equal up to input permutation,
    input polarity and per-output polarity, after support normalization)
    share a key; inequivalent vectors share one only on a hash collision,
    which the cache layer's verification turns into a miss.
    """
    roots = list(roots)
    support: set[int] = set()
    for r in roots:
        support |= bdd.support(r)
    levels = tuple(sorted(support))
    n, m = len(levels), len(roots)

    if n == 0:
        # Constant vector: canonical phase maps every root to FALSE.
        output_phase = tuple(1 if r == TRUE else 0 for r in roots)
        return CanonicalForm(
            key=_digest("npn:", f"const:{m}".encode("ascii")),
            levels=(),
            perm=(),
            input_phase=(),
            output_phase=output_phase,
            exact=True,
        )

    scope = list(levels)
    half = 1 << (n - 1)
    counts = [_count(bdd, r, scope) for r in roots]

    # Output phase: canonical onset has at most half the minterms; exactly
    # half is a genuine tie and both phases are enumerated.
    phase_fixed = [0] * m
    phase_tied: list[int] = []
    for j, c in enumerate(counts):
        if c > half:
            phase_fixed[j] = 1
        elif c == half:
            phase_tied.append(j)

    # Raw (un-phased) cofactor counts; phase adjustment is linear so each
    # candidate phase vector reuses this one table.
    cof: list[list[tuple[int, int]]] = []
    for lvl in levels:
        rest = [x for x in levels if x != lvl]
        row = []
        for r in roots:
            c0 = _count(bdd, bdd.cofactor(r, lvl, False), rest)
            c1 = _count(bdd, bdd.cofactor(r, lvl, True), rest)
            row.append((c0, c1))
        cof.append(row)

    candidates = _candidates(
        bdd, roots, levels, cof, phase_fixed, phase_tied, max_candidates
    )
    if candidates is not None:
        best: tuple[bytes, tuple, tuple, tuple] | None = None
        for perm, input_phase, output_phase in candidates:
            blob = _rebuild_bytes(
                bdd, roots, levels, perm, input_phase, output_phase, node_budget
            )
            if blob is None:
                best = None
                break
            if best is None or blob < best[0]:
                best = (blob, perm, input_phase, output_phase)
        if best is not None:
            blob, perm, input_phase, output_phase = best
            return CanonicalForm(
                key=_digest("npn:", blob),
                levels=levels,
                perm=perm,
                input_phase=input_phase,
                output_phase=output_phase,
                exact=True,
            )

    # Fallback: support-normalized serialization in the caller's order.
    level_index = {lvl: i for i, lvl in enumerate(levels)}
    blob = dag_bytes(bdd, roots, level_index)
    return CanonicalForm(
        key=_digest("raw:", blob),
        levels=levels,
        perm=tuple(range(n)),
        input_phase=(0,) * n,
        output_phase=(0,) * m,
        exact=False,
    )


def _count(bdd: BDD, u: int, scope: list[int]) -> int:
    """Exact model count of ``u`` over ``scope`` (thin satcount wrapper)."""
    from repro.bdd.satcount import satcount

    return satcount(bdd, u, scope)
