"""Graphviz/dot export of BDDs, for debugging and documentation figures."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.bdd.manager import BDD, FALSE, TRUE


def to_dot(bdd: BDD, roots: Mapping[str, int] | Sequence[int]) -> str:
    """Render the functions in ``roots`` as a dot digraph.

    ``roots`` is either a mapping from labels to node ids or a plain sequence
    of node ids (labelled ``f0, f1, ...``).  Solid edges are then-edges,
    dashed edges are else-edges.
    """
    if not isinstance(roots, Mapping):
        roots = {f"f{i}": r for i, r in enumerate(roots)}
    lines = ["digraph bdd {", "  rankdir=TB;"]
    lines.append('  node_true [label="1", shape=box];')
    lines.append('  node_false [label="0", shape=box];')

    def nid(u: int) -> str:
        if u == TRUE:
            return "node_true"
        if u == FALSE:
            return "node_false"
        return f"n{u}"

    seen: set[int] = set()
    stack = list(roots.values())
    while stack:
        u = stack.pop()
        if u in seen or bdd.is_terminal(u):
            continue
        seen.add(u)
        name = bdd.var_name(bdd.level(u))
        lines.append(f'  n{u} [label="{name}", shape=circle];')
        lines.append(f"  n{u} -> {nid(bdd.high(u))};")
        lines.append(f"  n{u} -> {nid(bdd.low(u))} [style=dashed];")
        stack.append(bdd.low(u))
        stack.append(bdd.high(u))

    for label, root in roots.items():
        lines.append(f'  root_{label} [label="{label}", shape=plaintext];')
        lines.append(f"  root_{label} -> {nid(root)};")
    lines.append("}")
    return "\n".join(lines)
