"""Variable reordering by rebuilding.

Node ids in :class:`repro.bdd.manager.BDD` are canonical handles, so the
classic in-place adjacent-swap sifting would silently change the function
behind every outstanding id.  Instead, reordering here is *functional*: a new
manager is created with the desired variable order and the root functions are
transferred into it with :func:`copy_function`.  For the variable counts that
appear in decomposition work (bound sets of <= 10, z-spaces of <= 64) this is
fast enough and keeps the manager semantics simple.

:func:`sift` implements a greedy variant of Rudell's sifting on top of this:
each variable in turn is tried at every position and kept at the best one.
"""

from __future__ import annotations

from typing import Sequence

from repro.bdd.manager import BDD, FALSE, TRUE


def copy_function(src: BDD, u: int, dst: BDD, level_map: dict[int, int] | None = None) -> int:
    """Transfer the function rooted at ``u`` from ``src`` into ``dst``.

    ``level_map`` maps source levels to destination levels; by default levels
    map to themselves.  The destination order may be arbitrary -- the rebuild
    goes through ITE, which renormalizes.
    """
    if level_map is None:
        level_map = {lvl: lvl for lvl in range(src.num_vars)}
    cache: dict[int, int] = {}

    def walk(v: int) -> int:
        if v == TRUE or v == FALSE:
            return v
        hit = cache.get(v)
        if hit is not None:
            return hit
        lo = walk(src.low(v))
        hi = walk(src.high(v))
        lit = dst.var(level_map[src.level(v)])
        result = dst.ite(lit, hi, lo)
        cache[v] = result
        return result

    return walk(u)


def rebuild_with_order(src: BDD, roots: Sequence[int], order: Sequence[str]) -> tuple[BDD, list[int]]:
    """Rebuild ``roots`` in a fresh manager whose variable order is ``order``.

    ``order`` lists *all* variable names of ``src`` in the desired top-to-
    bottom order.  Returns the new manager and the transferred roots.
    """
    names = [src.var_name(lvl) for lvl in range(src.num_vars)]
    if sorted(order) != sorted(names):
        raise ValueError("order must be a permutation of the manager's variables")
    # Rebuild into the same backend as the source so a reordered arena
    # stays an arena (and its stats stay comparable).
    dst = src.clone_empty()
    for name in order:
        dst.add_var(name)
    level_map = {src.level_of(name): dst.level_of(name) for name in order}
    new_roots = [copy_function(src, r, dst, level_map) for r in roots]
    return dst, new_roots


def total_size(bdd: BDD, roots: Sequence[int]) -> int:
    """Number of distinct nodes in the union of the root functions."""
    seen: set[int] = set()
    stack = list(roots)
    while stack:
        v = stack.pop()
        if v in seen:
            continue
        seen.add(v)
        if not bdd.is_terminal(v):
            stack.append(bdd.low(v))
            stack.append(bdd.high(v))
    return len(seen)


class GrowthTrigger:
    """Node-growth trigger for automatic reordering (off unless armed).

    The engine arms the trigger with the manager's post-build allocation
    count; :meth:`should_fire` answers whether the manager has since grown
    past ``factor`` times that baseline.  After a reorder the engine re-arms
    with the new manager's size, so repeated growth keeps re-triggering.
    """

    def __init__(self, factor: float = 4.0) -> None:
        if factor <= 1.0:
            raise ValueError("reorder factor must exceed 1.0")
        self.factor = factor
        self.baseline: int | None = None

    def arm(self, nodes: int) -> None:
        """Record the reference allocation count (clamped to >= 1)."""
        self.baseline = max(int(nodes), 1)

    def should_fire(self, nodes: int) -> bool:
        """True when ``nodes`` crossed ``factor * baseline`` (armed only)."""
        return self.baseline is not None and nodes >= self.factor * self.baseline


def sift_groups(
    bdd: BDD, groups: Sequence[Sequence[int]], max_passes: int = 1
) -> tuple[BDD, list[list[int]], dict[int, int]] | None:
    """Sift over the union of several root lists at once.

    Returns ``(new_bdd, new_groups, level_map)`` with ``level_map`` sending
    source levels to destination levels, or ``None`` when no better order
    was found.  The input manager is never mutated, so callers can swap the
    new manager in atomically (the engine's between-group reorder hook).
    """
    flat = [r for g in groups for r in g]
    new_bdd, new_flat = sift(bdd, flat, max_passes=max_passes)
    if new_bdd is bdd:
        return None
    level_map = {
        bdd.level_of(new_bdd.var_name(lvl)): lvl
        for lvl in range(new_bdd.num_vars)
    }
    it = iter(new_flat)
    new_groups = [[next(it) for _ in g] for g in groups]
    return new_bdd, new_groups, level_map


def sift(bdd: BDD, roots: Sequence[int], max_passes: int = 1) -> tuple[BDD, list[int]]:
    """Greedy sifting: move each variable to its locally best position.

    Returns a (possibly new) manager and the corresponding roots.  The input
    manager is never mutated.
    """
    order = [bdd.var_name(lvl) for lvl in range(bdd.num_vars)]
    best_bdd, best_roots = bdd, list(roots)
    best_size = total_size(best_bdd, best_roots)
    for _ in range(max_passes):
        improved = False
        for name in list(order):
            base = [n for n in order if n != name]
            for pos in range(len(order)):
                candidate = base[:pos] + [name] + base[pos:]
                if candidate == order:
                    continue
                cand_bdd, cand_roots = rebuild_with_order(best_bdd, best_roots, candidate)
                cand_size = total_size(cand_bdd, cand_roots)
                if cand_size < best_size:
                    best_bdd, best_roots, best_size = cand_bdd, cand_roots, cand_size
                    order = candidate
                    improved = True
        if not improved:
            break
    return best_bdd, best_roots
