"""The BDD backend seam: named, pluggable manager implementations.

Mirrors the executor seam in :mod:`repro.engine.executors`: a registry of
named constructors, a :func:`make_manager` factory that flow code calls
instead of instantiating :class:`repro.bdd.manager.BDD` directly, and a
config/CLI knob (``FlowConfig.bdd_backend`` / ``--bdd-backend``) that picks
the implementation.

Two backends ship:

- ``object`` -- :class:`repro.bdd.manager.BDD`, the dict-backed reference
  implementation (the oracle for differential tests);
- ``arena`` -- :class:`repro.bdd.arena.ArenaBDD`, the flat-numpy arena with
  iterative integer kernels (requires :mod:`numpy`; imported lazily so the
  rest of the package works without it).

Both expose the same manager API and identical complement-edge canonical
form, so any flow runs on either and emits byte-identical BLIF; only raw
node numbers (and speed) differ.
"""

from __future__ import annotations

from typing import Callable

from repro.bdd.manager import BDD

#: Known backend names, in documentation order.
BACKEND_NAMES = ("object", "arena")

#: Default backend used when no configuration says otherwise.
DEFAULT_BACKEND = "object"


class BackendUnavailable(RuntimeError):
    """A known backend cannot be constructed in this environment.

    Carries a human-readable reason (e.g. numpy missing for ``arena``);
    the CLI maps it to exit code 2 like any other configuration error.
    """


def _make_object(cache_limit: int | None):
    if cache_limit is None:
        return BDD()
    return BDD(cache_limit)


def _make_arena(cache_limit: int | None):
    try:
        from repro.bdd.arena import ArenaBDD
    except ImportError as exc:  # pragma: no cover - numpy is a runtime dep
        raise BackendUnavailable(
            "bdd backend 'arena' requires numpy, which is not installed; "
            "install the package dependencies or use --bdd-backend object"
        ) from exc
    return ArenaBDD(cache_limit)


_FACTORIES: dict[str, Callable[[int | None], object]] = {
    "object": _make_object,
    "arena": _make_arena,
}


def make_manager(backend: str = DEFAULT_BACKEND, cache_limit: int | None = None):
    """Construct a BDD manager for the named backend.

    Raises ``ValueError`` for unknown names and
    :class:`BackendUnavailable` when the backend's dependencies are
    missing (both surface as exit code 2 from the CLI).
    """
    factory = _FACTORIES.get(backend)
    if factory is None:
        raise ValueError(
            f"unknown bdd backend {backend!r}; expected one of {BACKEND_NAMES}"
        )
    return factory(cache_limit)


def backend_of(bdd) -> str:
    """Name of the backend a manager instance belongs to."""
    return getattr(bdd, "backend_name", DEFAULT_BACKEND)
