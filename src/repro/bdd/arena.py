"""Arena-based ROBDD backend: flat numpy node store, iterative integer kernels.

This is the second implementation of the BDD-manager seam
(:mod:`repro.bdd.backend`).  Where :class:`repro.bdd.manager.BDD` keeps its
node store in Python lists and memoizes through Python dicts, the
:class:`ArenaBDD` keeps *everything* in flat ``int64`` arrays:

- **node columns** ``var`` / ``lo`` / ``hi``, grown geometrically, indexed
  by node number (slot 0 is the terminal);
- a **unique table** as one open-addressing (linear-probe) ``int64`` array
  holding node numbers, rehashed at load factor 1/2;
- a **fixed-slot operation cache**: three parallel ``int64`` arrays
  (two packed key words and a result word) indexed by a hash of the
  operands -- colliding entries overwrite (counted as evictions), so the
  cache needs no eviction scans and its memory is constant.

Edges are integers ``(node << 1) | complement`` with the same canonical
polarity invariants as the object manager (stored low edges are regular;
``FALSE == 0``, ``TRUE == 1``), so the two backends produce structurally
identical diagrams and byte-identical downstream netlists -- only the raw
node numbers differ.

Every operation is **iterative over integer edges** -- the kernels walk
explicit stacks (scalar path) or level-bucketed frontiers (vectorized
path); no per-node Python objects are ever allocated.  Scalar kernels read
the columns through :class:`memoryview` mirrors and probe the shared
tables in place; when a single AND/XOR/restrict call exceeds
``scalar_budget`` cache misses it *bails out* to the breadth-first
vectorized kernel, which processes whole per-level frontiers with numpy
gathers, ``np.unique`` deduplication and batched find-or-create inserts.
The two paths share the unique table and the op cache, so work done before
a bailout is never wasted.  This keeps tiny operations at dict-engine
latency while large operations (the rot/C5315/des regime) run at a few
numpy calls per level instead of a few dict probes per node.

See ``docs/ENGINE.md`` ("Arena backend") for the layout and invariant
catalogue, and ``benchmarks/bench_bdd_ops.py`` for the object-vs-arena
microbenchmark comparison recorded in ``BENCH_bdd_ops.json``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.bdd.manager import FALSE, TERMINAL_LEVEL, TRUE, row_mask

#: Default operation-cache size target (slots; a power of two).
DEFAULT_CACHE_SLOTS = 1 << 18

#: Slots the operation cache starts with.  It doubles toward the target
#: as evictions accrue (one per slot), so a throwaway manager never pays
#: the multi-megabyte memset of a full-size cache up front.
_INITIAL_CACHE_SLOTS = 1 << 12

#: Cache-miss budget of one scalar kernel call before it bails out to the
#: breadth-first vectorized kernel (shared tables make the switch free).
#: Chosen near the crossover where per-level numpy batches beat per-node
#: Python probes (see BENCH_bdd_ops.json for the measured curves).
DEFAULT_SCALAR_BUDGET = 512

# Operation tags packed into the low bits of the first cache key word.
_OP_AND = 1
_OP_XOR = 2
_OP_ITE = 3
_OP_RESTRICT = 4

_M64 = (1 << 64) - 1
_C1 = 0x9E3779B97F4A7C15
_C2 = 0xC2B2AE3D27D4EB4F
_C3 = 0x165667B19E3779F9
_U1 = np.uint64(_C1)
_U2 = np.uint64(_C2)
_U3 = np.uint64(_C3)
_U29 = np.uint64(29)

#: Bound on the per-root support memo (entries); cleared wholesale when hit.
_SUPPORT_CACHE_LIMIT = 1 << 17


def _pow2_at_least(n: int) -> int:
    """Smallest power of two >= max(n, 4)."""
    size = 4
    while size < n:
        size <<= 1
    return size


def _vhash2(k1: np.ndarray, k2: np.ndarray) -> np.ndarray:
    """Vector hash of two int64 key columns (uint64 wraparound mix)."""
    h = k1.astype(np.uint64) * _U1 + k2.astype(np.uint64) * _U2
    return h ^ (h >> _U29)


def _vhash3(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Vector hash of three int64 columns (uint64 wraparound mix)."""
    h = (
        a.astype(np.uint64) * _U1
        + b.astype(np.uint64) * _U2
        + c.astype(np.uint64) * _U3
    )
    return h ^ (h >> _U29)


class ArenaBDD:
    """A reduced ordered BDD manager over a flat numpy arena.

    Drop-in replacement for :class:`repro.bdd.manager.BDD` behind the
    :mod:`repro.bdd.backend` seam::

        bdd = ArenaBDD()
        x, y = bdd.add_var("x"), bdd.add_var("y")
        f = bdd.apply_and(x, bdd.apply_not(y))   # x & ~y
        assert bdd.eval(f, {0: True, 1: False})

    ``cache_limit`` bounds the operation cache exactly like the object
    manager's constructor argument, except that here it is rounded to a
    power-of-two *slot-count target* of a direct-mapped cache rather than
    an eviction threshold of a dict.  The cache starts small and doubles
    toward the target as evictions accrue (see ``_maybe_grow_cache``).
    """

    backend_name = "arena"

    def __init__(
        self,
        cache_limit: int | None = None,
        *,
        table_bits: int = 12,
        scalar_budget: int = DEFAULT_SCALAR_BUDGET,
    ) -> None:
        """Create an empty arena.

        ``table_bits`` sizes the initial unique table (``2**table_bits``
        slots; it rehashes to double capacity at load factor 1/2) --
        lowering it is useful only to stress the rehash path in tests.
        """
        target = _pow2_at_least(min(cache_limit or DEFAULT_CACHE_SLOTS, 1 << 21))
        slots = min(target, _INITIAL_CACHE_SLOTS)
        cap = 1 << 10
        self._var = np.empty(cap, np.int64)
        self._lo = np.empty(cap, np.int64)
        self._hi = np.empty(cap, np.int64)
        self._var[0] = TERMINAL_LEVEL
        self._lo[0] = 0
        self._hi[0] = 0
        self._n = 1
        self._tbits = max(4, table_bits)
        self._utable = np.full(1 << self._tbits, -1, np.int64)
        self._cache_slots = slots
        self._cache_target = target
        self._grow_evictions = slots
        self._cmask = slots - 1
        self._ck1 = np.full(slots, -1, np.int64)
        self._ck2 = np.zeros(slots, np.int64)
        self._cres = np.zeros(slots, np.int64)
        self._refresh_views()
        self._scalar_budget = scalar_budget
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._growths = 0
        self._cache_growths = 0
        self._rehashes = 0
        self._scalar_ops = 0
        self._vector_ops = 0
        self._bailouts = 0
        self._support_cache: dict[int, frozenset[int]] = {}
        self._var_names: list[str] = []
        self._name_to_level: dict[str, int] = {}

    def _refresh_views(self) -> None:
        """Rebind the memoryview mirrors after any array reallocation."""
        self._v = memoryview(self._var)
        self._l = memoryview(self._lo)
        self._h = memoryview(self._hi)
        self._t = memoryview(self._utable)
        self._k1 = memoryview(self._ck1)
        self._k2 = memoryview(self._ck2)
        self._cr = memoryview(self._cres)

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------

    def add_var(self, name: str | None = None) -> int:
        """Create a new variable at the bottom of the order.

        Returns the edge of the positive literal.  ``name`` defaults to
        ``v<level>``.
        """
        level = len(self._var_names)
        if name is None:
            name = f"v{level}"
        if name in self._name_to_level:
            raise ValueError(f"variable name {name!r} already exists")
        self._var_names.append(name)
        self._name_to_level[name] = level
        return self._mk(level, FALSE, TRUE)

    def add_vars(self, count: int, prefix: str = "v") -> list[int]:
        """Create ``count`` fresh variables named ``<prefix>0..``; return literals."""
        start = len(self._var_names)
        return [self.add_var(f"{prefix}{start + i}") for i in range(count)]

    @property
    def num_vars(self) -> int:
        """Number of variables declared in this manager."""
        return len(self._var_names)

    def var(self, level: int) -> int:
        """Edge of the positive literal of the variable at ``level``."""
        self._check_level(level)
        return self._mk(level, FALSE, TRUE)

    def nvar(self, level: int) -> int:
        """Edge of the negative literal of the variable at ``level``."""
        self._check_level(level)
        return self._mk(level, TRUE, FALSE)

    def literal(self, level: int, positive: bool) -> int:
        """Positive or negative literal of ``level``."""
        return self.var(level) if positive else self.nvar(level)

    def var_name(self, level: int) -> str:
        """Name of the variable at ``level``."""
        self._check_level(level)
        return self._var_names[level]

    def level_of(self, name: str) -> int:
        """Level of the variable called ``name``."""
        return self._name_to_level[name]

    def _check_level(self, level: int) -> None:
        if not 0 <= level < len(self._var_names):
            raise ValueError(f"unknown variable level {level}")

    # ------------------------------------------------------------------
    # arena maintenance: growth, rehash
    # ------------------------------------------------------------------

    def _grow(self, need: int) -> None:
        """Double the node columns until they hold ``need`` nodes."""
        cap = len(self._var)
        while cap < need:
            cap <<= 1
        for name in ("_var", "_lo", "_hi"):
            old = getattr(self, name)
            new = np.empty(cap, np.int64)
            new[: self._n] = old[: self._n]
            setattr(self, name, new)
        self._growths += 1
        self._refresh_views()

    def _rehash(self, need: int) -> None:
        """Replace the unique table with one sized for ``need`` live nodes."""
        while (need + 1) * 2 > (1 << self._tbits):
            self._tbits += 1
        size = 1 << self._tbits
        mask = np.uint64(size - 1)
        table = np.full(size, -1, np.int64)
        n = self._n
        if n > 1:
            idx = np.arange(1, n, dtype=np.int64)
            slot = (
                _vhash3(self._var[1:n], self._lo[1:n], self._hi[1:n]) & mask
            ).astype(np.int64)
            pend, pslot = idx, slot
            while pend.size:
                empty = table[pslot] == -1
                cand, cslot = pend[empty], pslot[empty]
                table[cslot] = cand
                won = table[cslot] == cand
                pend = np.concatenate([pend[~empty], cand[~won]])
                pslot = np.concatenate([pslot[~empty], cslot[~won]])
                pslot = (pslot + 1) & np.int64(size - 1)
        self._utable = table
        self._rehashes += 1
        self._refresh_views()

    # ------------------------------------------------------------------
    # node construction and inspection (scalar path)
    # ------------------------------------------------------------------

    def _lookup_insert(self, level: int, lo: int, hi: int) -> int:
        """Find-or-create the node ``(level, lo, hi)``; ``lo`` is regular."""
        tmask = (1 << self._tbits) - 1
        h = (level * _C1 + lo * _C2 + hi * _C3) & _M64
        slot = (h ^ (h >> 29)) & tmask
        t = self._t
        v, l, hh = self._v, self._l, self._h
        while True:
            node = t[slot]
            if node < 0:
                break
            if v[node] == level and l[node] == lo and hh[node] == hi:
                return node
            slot = (slot + 1) & tmask
        node = self._n
        if node == len(self._var):
            self._grow(node + 1)
            v, l, hh = self._v, self._l, self._h
        v[node] = level
        l[node] = lo
        hh[node] = hi
        self._n = node + 1
        self._t[slot] = node
        if (node + 2) * 2 > tmask + 1:
            self._rehash(node + 1)
        return node

    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the edge for ``(level, low, high)``.

        Applies the reduction rule (equal children collapse) and the
        canonical polarity rule (stored low edges are regular; a
        complemented low pushes the complement to the returned edge).
        """
        if low == high:
            return low
        c = low & 1
        return (self._lookup_insert(level, low ^ c, high ^ c) << 1) | c

    def mk(self, level: int, low: int, high: int) -> int:
        """Public canonical find-or-create (the transfer/import seam)."""
        return self._mk(level, low, high)

    def level(self, u: int) -> int:
        """Level of edge ``u`` (``TERMINAL_LEVEL`` for constants)."""
        return self._v[u >> 1]

    def low(self, u: int) -> int:
        """Else-child (variable = 0) of edge ``u``, complement propagated."""
        return self._l[u >> 1] ^ (u & 1)

    def high(self, u: int) -> int:
        """Then-child (variable = 1) of edge ``u``, complement propagated."""
        return self._h[u >> 1] ^ (u & 1)

    def is_terminal(self, u: int) -> bool:
        """True iff ``u`` is one of the constants."""
        return u <= 1

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ever allocated (including the terminal)."""
        return self._n

    def size(self, u: int) -> int:
        """Number of distinct functions (edges) reachable from ``u``."""
        lows = self._l
        highs = self._h
        seen: set[int] = set()
        add = seen.add
        stack = [u]
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            add(v)
            i = v >> 1
            if i:
                c = v & 1
                stack.append(lows[i] ^ c)
                stack.append(highs[i] ^ c)
        return len(seen)

    def descendants(self, u: int) -> set[int]:
        """Set of edges reachable from ``u`` (including ``u`` and terminals)."""
        lows = self._l
        highs = self._h
        seen: set[int] = set()
        add = seen.add
        stack = [u]
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            add(v)
            i = v >> 1
            if i:
                c = v & 1
                stack.append(lows[i] ^ c)
                stack.append(highs[i] ^ c)
        return seen

    # ------------------------------------------------------------------
    # the fixed-slot operation cache
    # ------------------------------------------------------------------

    def clear_caches(self) -> None:
        """Drop all memoization tables (nodes are kept)."""
        self._ck1[:] = -1
        self._support_cache.clear()

    def cache_size(self) -> int:
        """Number of live entries in the fixed-slot operation cache."""
        return int(np.count_nonzero(self._ck1 >= 0))

    def cache_stats(self) -> dict:
        """Counters of the operation cache (and the node count).

        Same key set as :meth:`repro.bdd.manager.BDD.cache_stats`;
        ``evictions`` counts slot overwrites (the fixed-slot equivalent of
        dropping an entry).  Arena-specific counters live in
        :meth:`arena_stats`.
        """
        total = self._hits + self._misses
        return {
            "entries": self.cache_size(),
            "hits": self._hits,
            "misses": self._misses,
            "hit_rate": self._hits / total if total else 0.0,
            "evictions": self._evictions,
            "nodes": self._n,
        }

    def arena_stats(self) -> dict:
        """Arena-backend internals: store geometry and kernel dispatch.

        Folded into :class:`repro.observe.stats.BddStats` (and therefore
        into run reports) when this backend is active.
        """
        return {
            "capacity": len(self._var),
            "table_slots": 1 << self._tbits,
            "table_load": self._n / (1 << self._tbits),
            "cache_slots": self._cache_slots,
            "cache_occupancy": self.cache_size() / self._cache_slots,
            "cache_growths": self._cache_growths,
            "growths": self._growths,
            "rehashes": self._rehashes,
            "scalar_ops": self._scalar_ops,
            "vector_ops": self._vector_ops,
            "bailouts": self._bailouts,
        }

    def _cache_slot(self, k1: int, k2: int) -> int:
        h = (k1 * _C1 + k2 * _C2) & _M64
        return (h ^ (h >> 29)) & self._cmask

    def _cache_get(self, k1: int, k2: int) -> int | None:
        slot = self._cache_slot(k1, k2)
        if self._k1[slot] == k1 and self._k2[slot] == k2:
            self._hits += 1
            return self._cr[slot]
        self._misses += 1
        return None

    def _cache_put(self, k1: int, k2: int, res: int) -> None:
        slot = self._cache_slot(k1, k2)
        old = self._k1[slot]
        if old >= 0 and (old != k1 or self._k2[slot] != k2):
            self._evictions += 1
        self._k1[slot] = k1
        self._k2[slot] = k2
        self._cr[slot] = res
        if self._evictions >= self._grow_evictions:
            self._maybe_grow_cache()

    def _maybe_grow_cache(self) -> None:
        """Double the op cache once evictions show it is undersized.

        The cache starts tiny (``_INITIAL_CACHE_SLOTS``) so that the flood
        of short-lived managers a flow constructs never pays the multi-MB
        memset of a full-size cache; a manager doubles toward the
        ``cache_limit`` target only after accruing one eviction per current
        slot.  Live entries are rehashed into the doubled arrays (scatter
        collisions overwrite, as always for a direct-mapped cache).
        Kernels still holding the old arrays through captured views keep
        writing into them safely; those writes are simply lost to future
        lookups, which every read survives because it key-verifies.
        """
        if self._cache_slots >= self._cache_target:
            self._grow_evictions = _M64  # never again
            return
        old_k1, old_k2, old_r = self._ck1, self._ck2, self._cres
        slots = self._cache_slots * 2
        self._cache_slots = slots
        self._cmask = slots - 1
        self._ck1 = np.full(slots, -1, np.int64)
        self._ck2 = np.zeros(slots, np.int64)
        self._cres = np.zeros(slots, np.int64)
        live = old_k1 >= 0
        if live.any():
            k1v = old_k1[live]
            k2v = old_k2[live]
            slotv = (_vhash2(k1v, k2v) & np.uint64(self._cmask)).astype(np.int64)
            self._ck1[slotv] = k1v
            self._ck2[slotv] = k2v
            self._cres[slotv] = old_r[live]
        self._refresh_views()
        self._cache_growths += 1
        self._grow_evictions = self._evictions + slots

    # ------------------------------------------------------------------
    # vectorized find-or-create
    # ------------------------------------------------------------------

    def _find_or_create_vec(
        self, var: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Vector find-or-create of regular-low triples; returns node numbers."""
        m = len(var)
        if (self._n + m + 1) * 2 > (1 << self._tbits):
            self._rehash(self._n + m)
        size = 1 << self._tbits
        mask = np.uint64(size - 1)
        imask = np.int64(size - 1)
        slot = (_vhash3(var, lo, hi) & mask).astype(np.int64)
        out = np.empty(m, np.int64)
        pend = np.arange(m)
        table = self._utable
        while pend.size:
            s = slot[pend]
            t = table[s]
            empty = t == -1
            hit = np.zeros(len(pend), np.bool_)
            occ = ~empty
            if occ.any():
                to = t[occ]
                hit_occ = (
                    (self._var[to] == var[pend[occ]])
                    & (self._lo[to] == lo[pend[occ]])
                    & (self._hi[to] == hi[pend[occ]])
                )
                hit[occ] = hit_occ
                out[pend[occ][hit_occ]] = to[hit_occ]
            claim = pend[empty]
            if claim.size:
                cslot = s[empty]
                need = self._n + claim.size
                if need > len(self._var):
                    self._grow(need)
                ids = self._n + np.arange(claim.size, dtype=np.int64)
                table[cslot] = ids
                won = table[cslot] == ids
                nwin = int(np.count_nonzero(won))
                win_ids = self._n + np.arange(nwin, dtype=np.int64)
                self._var[win_ids] = var[claim[won]]
                self._lo[win_ids] = lo[claim[won]]
                self._hi[win_ids] = hi[claim[won]]
                table[cslot[won]] = win_ids
                self._n += nwin
                out[claim[won]] = win_ids
                # Probe-mismatched entries advance; claim *losers* re-probe
                # the same slot so a duplicate triple inserted this round is
                # found there next iteration instead of allocated twice.
                adv = pend[occ & ~hit]
                slot[adv] = (slot[adv] + 1) & imask
                pend = np.concatenate([adv, claim[~won]])
            else:
                pend = pend[occ & ~hit]
                slot[pend] = (slot[pend] + 1) & imask
        return out

    def _mk_vec(
        self, var: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Vector :meth:`_mk`: reduction + canonical polarity + find-or-create."""
        res = np.empty(len(var), np.int64)
        same = lo == hi
        res[same] = lo[same]
        act = ~same
        if act.any():
            var, lo, hi = var[act], lo[act], hi[act]
            pol = lo & 1
            lo = lo ^ pol
            hi = hi ^ pol
            if len(var) < 64:
                # Tiny batch: the insert loop handles duplicates itself.
                nodes = self._find_or_create_vec(var, lo, hi)
            else:
                # Exact two-step dedup: pack the child pair (edges < 2^31 by
                # the arena size assumption), then pair id with the level.
                pair = (lo << 32) | hi
                _, pid = np.unique(pair, return_inverse=True)
                triple = (var << 32) | pid
                _, first, inv = np.unique(
                    triple, return_index=True, return_inverse=True
                )
                nodes = self._find_or_create_vec(var[first], lo[first], hi[first])[inv]
            res[act] = (nodes << 1) | pol
        return res

    # ------------------------------------------------------------------
    # core Boolean operations: scalar kernels with vectorized bailout
    # ------------------------------------------------------------------

    def apply_not(self, f: int) -> int:
        """Complement of ``f`` -- a single XOR on the complement attribute."""
        return f ^ 1

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction ``f & g`` (iterative integer kernel)."""
        if f == g:
            return f
        if f ^ g == 1:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE:
            return f
        if f == FALSE or g == FALSE:
            return FALSE
        self._scalar_ops += 1
        budget = self._scalar_budget
        levels, lows, highs = self._v, self._l, self._h
        k1s, k2s, crs = self._k1, self._k2, self._cr
        cmask = self._cmask
        hits = 0
        misses = 0
        # Explicit-stack apply: mode 0 expands a (f, g) subproblem, mode 1
        # combines the two child results into a node and fills the cache.
        tasks: list[tuple] = [(0, f, g)]
        pop = tasks.pop
        push = tasks.append
        results: list[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            mode, a, b = pop()
            if mode:
                # a = packed key pair, b = branching level.
                r1 = rpop()
                r0 = rpop()
                if r0 == r1:
                    res = r0
                else:
                    c = r0 & 1
                    res = (self._lookup_insert(b, r0 ^ c, r1 ^ c) << 1) | c
                    levels, lows, highs = self._v, self._l, self._h
                k1, k2 = a
                slot = self._cache_slot(k1, k2)
                old = k1s[slot]
                if old >= 0 and (old != k1 or k2s[slot] != k2):
                    self._evictions += 1
                k1s[slot] = k1
                k2s[slot] = k2
                crs[slot] = res
                rpush(res)
                continue
            if a == b:
                rpush(a)
                continue
            if a ^ b == 1 or a == FALSE or b == FALSE:
                rpush(FALSE)
                continue
            if a == TRUE:
                rpush(b)
                continue
            if b == TRUE:
                rpush(a)
                continue
            if a > b:
                a, b = b, a
            k1 = (a << 3) | _OP_AND
            k2 = b
            h = (k1 * _C1 + k2 * _C2) & _M64
            slot = (h ^ (h >> 29)) & cmask
            if k1s[slot] == k1 and k2s[slot] == k2:
                hits += 1
                rpush(crs[slot])
                continue
            misses += 1
            if misses > budget:
                self._hits += hits
                self._misses += misses
                self._bailouts += 1
                return self._apply_bin_vec(_OP_AND, f, g)
            ia = a >> 1
            ib = b >> 1
            la = levels[ia]
            lb = levels[ib]
            if la <= lb:
                ca = a & 1
                a0 = lows[ia] ^ ca
                a1 = highs[ia] ^ ca
                top = la
            else:
                a0 = a1 = a
                top = lb
            if lb <= la:
                cb = b & 1
                b0 = lows[ib] ^ cb
                b1 = highs[ib] ^ cb
            else:
                b0 = b1 = b
            push((1, (k1, k2), top))
            push((0, a1, b1))
            push((0, a0, b0))
        self._hits += hits
        self._misses += misses
        if self._evictions >= self._grow_evictions:
            self._maybe_grow_cache()
        return results[0]

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or ``f ^ g`` (iterative integer kernel).

        Complement attributes factor out of XOR entirely, so the kernel
        recurses and caches on polarity-stripped edges only -- every cache
        entry serves four polarity combinations.
        """
        pol = (f ^ g) & 1
        a = f & -2
        b = g & -2
        if a == b:
            return pol
        if a == FALSE:
            return b ^ pol
        if b == FALSE:
            return a ^ pol
        self._scalar_ops += 1
        budget = self._scalar_budget
        levels, lows, highs = self._v, self._l, self._h
        k1s, k2s, crs = self._k1, self._k2, self._cr
        cmask = self._cmask
        hits = 0
        misses = 0
        root_a, root_b, root_pol = a, b, pol
        tasks: list[tuple] = [(0, a, b, pol)]
        pop = tasks.pop
        push = tasks.append
        results: list[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            mode, a, b, p = pop()
            if mode:
                # a = packed key pair, b = branching level.
                r1 = rpop()
                r0 = rpop()
                if r0 == r1:
                    res = r0
                else:
                    c = r0 & 1
                    res = (self._lookup_insert(b, r0 ^ c, r1 ^ c) << 1) | c
                    levels, lows, highs = self._v, self._l, self._h
                k1, k2 = a
                slot = self._cache_slot(k1, k2)
                old = k1s[slot]
                if old >= 0 and (old != k1 or k2s[slot] != k2):
                    self._evictions += 1
                k1s[slot] = k1
                k2s[slot] = k2
                crs[slot] = res
                rpush(res ^ p)
                continue
            p ^= (a ^ b) & 1
            a &= -2
            b &= -2
            if a == b:
                rpush(p)
                continue
            if a == FALSE:
                rpush(b ^ p)
                continue
            if b == FALSE:
                rpush(a ^ p)
                continue
            if a > b:
                a, b = b, a
            k1 = (a << 3) | _OP_XOR
            k2 = b
            h = (k1 * _C1 + k2 * _C2) & _M64
            slot = (h ^ (h >> 29)) & cmask
            if k1s[slot] == k1 and k2s[slot] == k2:
                hits += 1
                rpush(crs[slot] ^ p)
                continue
            misses += 1
            if misses > budget:
                self._hits += hits
                self._misses += misses
                self._bailouts += 1
                return self._apply_bin_vec(_OP_XOR, root_a, root_b) ^ root_pol
            ia = a >> 1
            ib = b >> 1
            la = levels[ia]
            lb = levels[ib]
            if la <= lb:
                a0 = lows[ia]
                a1 = highs[ia]
                top = la
            else:
                a0 = a1 = a
                top = lb
            if lb <= la:
                b0 = lows[ib]
                b1 = highs[ib]
            else:
                b0 = b1 = b
            push((1, (k1, k2), top, p))
            push((0, a1, b1, 0))
            push((0, a0, b0, 0))
        self._hits += hits
        self._misses += misses
        if self._evictions >= self._grow_evictions:
            self._maybe_grow_cache()
        return results[0]

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction ``f | g`` -- De Morgan over the AND kernel."""
        return self.apply_and(f ^ 1, g ^ 1) ^ 1

    def apply_xnor(self, f: int, g: int) -> int:
        """Equivalence ``f == g`` as a function."""
        return self.apply_xor(f, g) ^ 1

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``f -> g`` (``~(f & ~g)``)."""
        return self.apply_and(f, g ^ 1) ^ 1

    # ------------------------------------------------------------------
    # breadth-first vectorized binary apply
    # ------------------------------------------------------------------

    def _apply_bin_vec(self, op: int, f: int, g: int) -> int:
        """Level-synchronized vectorized apply of AND or XOR.

        Requests are packed pairs ``(a << 32) | b`` bucketed by their top
        level; the down-sweep expands whole frontiers (op-cache gather,
        cofactor gathers, trivial-case masks), the up-sweep rebuilds with
        batched find-or-create and scatters results into the op cache.
        For XOR the operands are polarity-stripped and each child records
        the complement factored out of its pair.
        """
        self._vector_ops += 1
        res = self._apply_bin_vec_many(
            op, np.array([f], np.int64), np.array([g], np.int64)
        )
        return int(res[0])

    def _route(
        self,
        op: int,
        x: np.ndarray,
        y: np.ndarray,
        buckets: dict[int, list[np.ndarray]],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Classify child pairs: returns (key, pol, triv, top) arrays.

        ``triv >= 0`` is an immediate result edge; for the rest ``key``
        is the canonical packed request enqueued into ``buckets``, ``pol``
        the complement to apply to its eventual result, and ``top`` its
        branching level (meaningful at non-trivial positions only).
        """
        if op == _OP_XOR:
            pol = (x ^ y) & 1
            x = x & -2
            y = y & -2
        else:
            pol = np.zeros(len(x), np.int64)
        a = np.minimum(x, y)
        b = np.maximum(x, y)
        triv = np.full(len(a), -1, np.int64)
        if op == _OP_AND:
            m = a == b
            triv[m] = a[m]
            m = ((a ^ b) == 1) | (a == FALSE)
            triv[m] = FALSE
            m = (a == TRUE) & (triv == -1)
            triv[m] = b[m]
        else:
            m = a == b
            triv[m] = pol[m]
            m = (a == FALSE) & (triv == -1)
            triv[m] = b[m] ^ pol[m]
        key = (a << 32) | b
        need = triv == -1
        topf = np.zeros(len(a), np.int64)
        if need.any():
            ka = a[need]
            kb = b[need]
            top = np.minimum(self._var[ka >> 1], self._var[kb >> 1])
            topf[need] = top
            kk = key[need]
            for lvl in np.unique(top):
                sel = top == lvl
                buckets.setdefault(int(lvl), []).append(kk[sel])
        return key, pol, triv, topf

    def _apply_bin_vec_many(
        self, op: int, fs: np.ndarray, gs: np.ndarray
    ) -> np.ndarray:
        """Vectorized AND/XOR over aligned operand arrays (the BFS core)."""
        buckets: dict[int, list[np.ndarray]] = {}
        root = self._route(op, fs, gs, buckets)
        opk = np.int64(op)
        cmask = np.uint64(self._cmask)
        plan: list[tuple] = []
        while buckets:
            lvl = min(buckets)
            keys = np.unique(np.concatenate(buckets.pop(lvl)))
            ua = keys >> 32
            ub = keys & 0xFFFFFFFF
            k1 = (ua << 3) | opk
            slot = (_vhash2(k1, ub) & cmask).astype(np.int64)
            hit = (self._ck1[slot] == k1) & (self._ck2[slot] == ub)
            hit_res = np.where(hit, self._cres[slot], -1)
            self._hits += int(np.count_nonzero(hit))
            miss = ~hit
            self._misses += int(np.count_nonzero(miss))
            am, bm = ua[miss], ub[miss]
            ia, ib = am >> 1, bm >> 1
            va, vb = self._var[ia], self._var[ib]
            on_a = va <= vb
            on_b = vb <= va
            if op == _OP_AND:
                ca = (am & 1) * on_a
                cb = (bm & 1) * on_b
            else:
                ca = np.zeros(len(am), np.int64)
                cb = ca
            a0 = np.where(on_a, self._lo[ia] ^ ca, am)
            a1 = np.where(on_a, self._hi[ia] ^ ca, am)
            b0 = np.where(on_b, self._lo[ib] ^ cb, bm)
            b1 = np.where(on_b, self._hi[ib] ^ cb, bm)
            # Route both cofactor frontiers in one call (halves the
            # per-level numpy overhead); the up-sweep splits at len(a0).
            req = self._route(
                op, np.concatenate([a0, a1]), np.concatenate([b0, b1]), buckets
            )
            plan.append((lvl, keys, hit, hit_res, k1[miss], bm, slot[miss], req))
        resolved: dict[int, tuple[np.ndarray, np.ndarray]] = {}

        def gather(req: tuple) -> np.ndarray:
            key, pol, triv, topf = req
            out = triv.copy()
            need = triv == -1
            if need.any():
                kk = key[need]
                top = topf[need]
                sub = np.empty(len(kk), np.int64)
                for lvl in np.unique(top):
                    sel = top == lvl
                    rkeys, rres = resolved[int(lvl)]
                    sub[sel] = rres[np.searchsorted(rkeys, kk[sel])]
                out[need] = sub ^ pol[need]
            return out

        for lvl, keys, hit, hit_res, k1m, k2m, slotm, req in reversed(plan):
            both = gather(req)
            half = len(both) >> 1
            lo_res = both[:half]
            hi_res = both[half:]
            new = self._mk_vec(
                np.full(len(lo_res), lvl, np.int64), lo_res, hi_res
            )
            old = self._ck1[slotm]
            self._evictions += int(
                np.count_nonzero(
                    (old >= 0) & ((old != k1m) | (self._ck2[slotm] != k2m))
                )
            )
            self._ck1[slotm] = k1m
            self._ck2[slotm] = k2m
            self._cres[slotm] = new
            allres = np.empty(len(keys), np.int64)
            allres[hit] = hit_res[hit]
            allres[~hit] = new
            resolved[lvl] = (keys, allres)
        if self._evictions >= self._grow_evictions:
            self._maybe_grow_cache()
        return gather(root)

    # ------------------------------------------------------------------
    # if-then-else
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | ~f & h``.

        Constant and degenerate operand patterns dispatch to the
        specialized kernels; only genuine three-operand calls take the
        recursive path.
        """
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == (h ^ 1):
            return self.apply_xor(f, h)
        if h == FALSE:
            return self.apply_and(f, g)
        if h == TRUE:
            return self.apply_and(f, g ^ 1) ^ 1
        if g == FALSE:
            return self.apply_and(f ^ 1, h)
        if g == TRUE:
            return self.apply_and(f ^ 1, h ^ 1) ^ 1
        if f == g:
            return self.apply_and(f ^ 1, h ^ 1) ^ 1
        if f == (g ^ 1):
            return self.apply_and(f ^ 1, h)
        if f == h:
            return self.apply_and(f, g)
        if f == (h ^ 1):
            return self.apply_and(f, g ^ 1) ^ 1
        # Canonical triple: uncomplemented f (swap branches) and
        # uncomplemented g (push the complement to the result).
        if f & 1:
            f, g, h = f ^ 1, h, g
        pol = g & 1
        if pol:
            g ^= 1
            h ^= 1
        k1 = (f << 3) | _OP_ITE
        k2 = (g << 32) | h
        res = self._cache_get(k1, k2)
        if res is not None:
            return res ^ pol
        levels = self._v
        top = min(levels[f >> 1], levels[g >> 1], levels[h >> 1])
        f0, f1 = self._cofactors_at(f, top)
        g0, g1 = self._cofactors_at(g, top)
        h0, h1 = self._cofactors_at(h, top)
        r0 = self.ite(f0, g0, h0)
        r1 = self.ite(f1, g1, h1)
        res = self._mk(top, r0, r1)
        self._cache_put(k1, k2, res)
        return res ^ pol

    def _cofactors_at(self, u: int, level: int) -> tuple[int, int]:
        """(low, high) cofactors of ``u`` w.r.t. the variable at ``level``."""
        i = u >> 1
        if self._v[i] == level:
            c = u & 1
            return self._l[i] ^ c, self._h[i] ^ c
        return u, u

    def conjoin(self, fs: Iterable[int]) -> int:
        """Conjunction of an iterable of functions (TRUE for empty input)."""
        acc = TRUE
        for f in fs:
            acc = self.apply_and(acc, f)
            if acc == FALSE:
                return FALSE
        return acc

    def disjoin(self, fs: Iterable[int]) -> int:
        """Disjunction of an iterable of functions (FALSE for empty input)."""
        acc = FALSE
        for f in fs:
            acc = self.apply_or(acc, f)
            if acc == TRUE:
                return TRUE
        return acc

    # ------------------------------------------------------------------
    # cofactors, restriction, quantification, composition
    # ------------------------------------------------------------------

    def cofactor(self, u: int, level: int, value: bool) -> int:
        """Restrict variable ``level`` to ``value`` in ``u`` (Shannon cofactor)."""
        self._check_level(level)
        return self._restrict1(u, level, bool(value))

    def restrict(self, u: int, assignment: Mapping[int, bool]) -> int:
        """Simultaneously fix the variables in ``assignment`` (level -> value).

        Restriction to constants commutes, so the simultaneous restriction
        is computed as a fold of single-variable restrictions (each of
        which has both a scalar and a vectorized path).
        """
        for lvl in sorted(assignment):
            u = self._restrict1(u, lvl, bool(assignment[lvl]))
        return u

    def _restrict1(self, u: int, lvl: int, val: bool) -> int:
        """Single-variable restriction (the bound-set cofactoring hot path)."""
        i = u >> 1
        if i == 0 or self._v[i] > lvl:
            return u
        self._scalar_ops += 1
        budget = self._scalar_budget
        levels, lows, highs = self._v, self._l, self._h
        k1s, k2s, crs = self._k1, self._k2, self._cr
        cmask = self._cmask
        k2c = (lvl << 1) | val
        hits = 0
        misses = 0
        # mode 0 expands an edge, mode 1 rebuilds a node, mode 2 re-applies
        # a complement factored out of a mode-0 expansion.
        tasks: list[tuple] = [(0, u)]
        pop = tasks.pop
        push = tasks.append
        results: list[int] = []
        rpush = results.append
        rpop = results.pop
        bailed = False
        while tasks:
            mode, e = pop()
            if mode == 2:
                # Complement marker: the base edge's result is on the stack.
                rpush(rpop() ^ 1)
                continue
            if mode:
                r1 = rpop()
                r0 = rpop()
                i = e >> 1
                node_level = levels[i]
                if r0 == r1:
                    res = r0
                else:
                    c = r0 & 1
                    res = (self._lookup_insert(node_level, r0 ^ c, r1 ^ c) << 1) | c
                    levels, lows, highs = self._v, self._l, self._h
                k1 = (e << 3) | _OP_RESTRICT
                slot = self._cache_slot(k1, k2c)
                old = k1s[slot]
                if old >= 0 and (old != k1 or k2s[slot] != k2c):
                    self._evictions += 1
                k1s[slot] = k1
                k2s[slot] = k2c
                crs[slot] = res
                rpush(res)
                continue
            i = e >> 1
            if i == 0:
                rpush(e)
                continue
            node_level = levels[i]
            if node_level > lvl:
                rpush(e)
                continue
            c = e & 1
            base = e ^ c
            if node_level == lvl:
                rpush((highs[i] if val else lows[i]) ^ c)
                continue
            k1 = (base << 3) | _OP_RESTRICT
            h = (k1 * _C1 + k2c * _C2) & _M64
            slot = (h ^ (h >> 29)) & cmask
            if k1s[slot] == k1 and k2s[slot] == k2c:
                hits += 1
                rpush(crs[slot] ^ c)
                continue
            misses += 1
            if misses > budget:
                bailed = True
                break
            if c:
                # Complements factor out: solve the base edge, re-apply c.
                push((2, base))  # marker: apply complement to base result
                push((0, base))
                continue
            push((1, base))
            push((0, highs[i]))
            push((0, lows[i]))
        if bailed:
            self._hits += hits
            self._misses += misses
            self._bailouts += 1
            return self._restrict1_vec(u, lvl, val)
        self._hits += hits
        self._misses += misses
        if self._evictions >= self._grow_evictions:
            self._maybe_grow_cache()
        return results[0]

    def _restrict1_vec(self, u: int, lvl: int, val: bool) -> int:
        """Breadth-first vectorized single-variable restriction."""
        self._vector_ops += 1
        k2c = np.int64((lvl << 1) | val)
        cmask = np.uint64(self._cmask)
        buckets: dict[int, list[np.ndarray]] = {}
        chosen = self._hi if val else self._lo

        def route(e: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            """Split child edges into (base, pol, immediate-result)."""
            pol = e & 1
            base = e ^ pol
            i = base >> 1
            v = self._var[i]
            triv = np.full(len(e), -1, np.int64)
            m = (i == 0) | (v > lvl)
            triv[m] = e[m]
            at = (v == lvl) & ~m
            triv[at] = chosen[i[at]] ^ pol[at]
            need = triv == -1
            if need.any():
                nb = base[need]
                nv = v[need]
                for top in np.unique(nv):
                    sel = nv == top
                    buckets.setdefault(int(top), []).append(nb[sel])
            return base, pol, triv

        root_req = route(np.array([u], np.int64))
        plan: list[tuple] = []
        while buckets:
            top = min(buckets)
            bases = np.unique(np.concatenate(buckets.pop(top)))
            k1 = (bases << 3) | np.int64(_OP_RESTRICT)
            slot = (
                _vhash2(k1, np.full(len(k1), k2c, np.int64)) & cmask
            ).astype(np.int64)
            hit = (self._ck1[slot] == k1) & (self._ck2[slot] == k2c)
            hit_res = np.where(hit, self._cres[slot], -1)
            self._hits += int(np.count_nonzero(hit))
            miss = ~hit
            self._misses += int(np.count_nonzero(miss))
            bm = bases[miss]
            im = bm >> 1
            req = route(np.concatenate([self._lo[im], self._hi[im]]))
            plan.append((top, bases, hit, hit_res, k1[miss], slot[miss], req))
        resolved: dict[int, tuple[np.ndarray, np.ndarray]] = {}

        def gather(req: tuple) -> np.ndarray:
            base, pol, triv = req
            out = triv.copy()
            need = triv == -1
            if need.any():
                nb = base[need]
                nv = self._var[nb >> 1]
                sub = np.empty(len(nb), np.int64)
                for top in np.unique(nv):
                    sel = nv == top
                    rkeys, rres = resolved[int(top)]
                    sub[sel] = rres[np.searchsorted(rkeys, nb[sel])]
                out[need] = sub ^ pol[need]
            return out

        for top, bases, hit, hit_res, k1m, slotm, req in reversed(plan):
            both = gather(req)
            half = len(both) >> 1
            lo_res = both[:half]
            hi_res = both[half:]
            new = self._mk_vec(
                np.full(len(lo_res), top, np.int64), lo_res, hi_res
            )
            k2m = np.full(len(k1m), k2c, np.int64)
            old = self._ck1[slotm]
            self._evictions += int(
                np.count_nonzero(
                    (old >= 0) & ((old != k1m) | (self._ck2[slotm] != k2m))
                )
            )
            self._ck1[slotm] = k1m
            self._ck2[slotm] = k2m
            self._cres[slotm] = new
            allres = np.empty(len(bases), np.int64)
            allres[hit] = hit_res[hit]
            allres[~hit] = new
            resolved[top] = (bases, allres)
        if self._evictions >= self._grow_evictions:
            self._maybe_grow_cache()
        return int(gather(root_req)[0])

    def exists(self, u: int, levels: Iterable[int]) -> int:
        """Existential quantification of ``levels`` from ``u``.

        The walk memoizes per call; the OR combinations at quantified
        levels run through the (vectorizable) apply kernels.
        """
        lvlset = frozenset(levels)
        if not lvlset:
            return u
        max_level = max(lvlset)
        node_levels, lows, highs = self._v, self._l, self._h
        memo: dict[int, int] = {}

        def walk(v: int) -> int:
            i = v >> 1
            if i == 0:
                return v
            lvl = node_levels[i]
            if lvl > max_level:
                return v
            res = memo.get(v)
            if res is not None:
                return res
            c = v & 1
            r0 = walk(lows[i] ^ c)
            r1 = walk(highs[i] ^ c)
            if lvl in lvlset:
                res = self.apply_and(r0 ^ 1, r1 ^ 1) ^ 1
            else:
                res = self._mk(lvl, r0, r1)
            memo[v] = res
            return res

        return walk(u)

    def forall(self, u: int, levels: Iterable[int]) -> int:
        """Universal quantification of ``levels`` from ``u``."""
        return self.exists(u ^ 1, levels) ^ 1

    def compose(self, u: int, substitution: Mapping[int, int]) -> int:
        """Simultaneous substitution of functions for variables.

        Same recursive ITE formulation as the object backend; memoization
        is per call and per base node (complements factor out).
        """
        if not substitution:
            return u
        max_level = max(substitution)
        node_levels, lows, highs = self._v, self._l, self._h
        memo: dict[int, int] = {}

        def walk(v: int) -> int:
            i = v >> 1
            if i == 0:
                return v
            lvl = node_levels[i]
            if lvl > max_level:
                return v
            c = v & 1
            base = v ^ c
            res = memo.get(base)
            if res is None:
                r0 = walk(lows[i])
                r1 = walk(highs[i])
                branch = substitution.get(lvl)
                if branch is None:
                    branch = self.var(lvl)
                res = self.ite(branch, r1, r0)
                memo[base] = res
            return res ^ c

        return walk(u)

    def rename(self, u: int, mapping: Mapping[int, int]) -> int:
        """Rename variables (level -> level) via composition with literals."""
        return self.compose(u, {old: self.var(new) for old, new in mapping.items()})

    # ------------------------------------------------------------------
    # evaluation, support, satisfiability
    # ------------------------------------------------------------------

    def eval(self, u: int, assignment: Mapping[int, bool]) -> bool:
        """Evaluate ``u`` under a (complete-enough) level -> value assignment."""
        levels, lows, highs = self._v, self._l, self._h
        while u > 1:
            i = u >> 1
            u = (highs[i] if assignment[levels[i]] else lows[i]) ^ (u & 1)
        return u == TRUE

    def support(self, u: int) -> frozenset[int]:
        """Set of variable levels ``u`` depends on.

        Memoized per root node (complements do not change the support).
        The returned frozenset is the cached object -- do not
        mutate-by-identity.
        """
        root = u >> 1
        if root == 0:
            return frozenset()
        cache = self._support_cache
        cached = cache.get(root)
        if cached is not None:
            return cached
        node_levels, lows, highs = self._v, self._l, self._h
        found: set[int] = set()
        seen = {0, root}
        stack = [root]
        add_level = found.add
        while stack:
            i = stack.pop()
            add_level(node_levels[i])
            lo = lows[i] >> 1
            hi = highs[i] >> 1
            if lo not in seen:
                seen.add(lo)
                stack.append(lo)
            if hi not in seen:
                seen.add(hi)
                stack.append(hi)
        result = frozenset(found)
        if len(cache) > _SUPPORT_CACHE_LIMIT:
            cache.clear()
        cache[root] = result
        return result

    def sat_one(self, u: int) -> dict[int, bool] | None:
        """One satisfying partial assignment (level -> value), or None."""
        if u == FALSE:
            return None
        levels, lows, highs = self._v, self._l, self._h
        assignment: dict[int, bool] = {}
        while u > 1:
            i = u >> 1
            c = u & 1
            lo = lows[i] ^ c
            lvl = levels[i]
            if lo != FALSE:
                assignment[lvl] = False
                u = lo
            else:
                assignment[lvl] = True
                u = highs[i] ^ c
        return assignment

    def iter_sat(self, u: int, levels: Sequence[int]) -> Iterator[dict[int, bool]]:
        """Enumerate all total assignments over ``levels`` satisfying ``u``."""
        order = sorted(levels)
        support = self.support(u)
        missing = support - set(order)
        if missing:
            raise ValueError(f"levels {sorted(missing)} in support but not in scope")

        def rec(v: int, idx: int, partial: dict[int, bool]) -> Iterator[dict[int, bool]]:
            if v == FALSE:
                return
            if idx == len(order):
                yield dict(partial)
                return
            lvl = order[idx]
            i = v >> 1
            for value in (False, True):
                if i and self._v[i] == lvl:
                    child = (self._h[i] if value else self._l[i]) ^ (v & 1)
                else:
                    child = v
                partial[lvl] = value
                yield from rec(child, idx + 1, partial)
            del partial[lvl]

        yield from rec(u, 0, {})

    # ------------------------------------------------------------------
    # building from other representations
    # ------------------------------------------------------------------

    def cube(self, literals: Mapping[int, bool]) -> int:
        """Conjunction of literals, given as level -> polarity."""
        result = TRUE
        for lvl in sorted(literals, reverse=True):
            result = self._mk(lvl, FALSE, result) if literals[lvl] else self._mk(lvl, result, FALSE)
        return result

    def minterm(self, levels: Sequence[int], values: Sequence[bool]) -> int:
        """Minterm over ``levels`` with the given ``values``."""
        if len(levels) != len(values):
            raise ValueError("levels and values must have equal length")
        return self.cube(dict(zip(levels, values)))

    def from_truth_bits(self, bits: int, levels: Sequence[int]) -> int:
        """Build a BDD from a bit-packed truth table over ``levels``.

        Same row convention as the object backend (LSB-first, matching
        :class:`repro.boolfunc.truthtable.TruthTable`).
        """
        n = len(levels)
        if len(set(levels)) != n:
            raise ValueError("duplicate levels")
        full = (1 << (1 << n)) - 1 if n else 1
        pairs = sorted((lvl, j) for j, lvl in enumerate(levels))
        return self._from_bits_rec(bits & full, pairs, n)

    def _from_bits_rec(self, bits: int, pairs: list[tuple[int, int]], n: int) -> int:
        if n == 0:
            return TRUE if bits & 1 else FALSE
        level, bitpos = pairs[0]
        lo_bits = 0
        hi_bits = 0
        low_mask = (1 << bitpos) - 1
        for row in range(1 << n):
            if not (bits >> row) & 1:
                continue
            sub = ((row >> (bitpos + 1)) << bitpos) | (row & low_mask)
            if (row >> bitpos) & 1:
                hi_bits |= 1 << sub
            else:
                lo_bits |= 1 << sub
        rest = [(lvl, p - 1 if p > bitpos else p) for lvl, p in pairs[1:]]
        lo = self._from_bits_rec(lo_bits, rest, n - 1)
        hi = self._from_bits_rec(hi_bits, rest, n - 1)
        return self._mk(level, lo, hi)

    def to_truth_bits(self, u: int, levels: Sequence[int]) -> int:
        """Bit-packed truth table of ``u`` over ``levels`` (LSB-first rows)."""
        n = len(levels)
        support = self.support(u)
        missing = support - set(levels)
        if missing:
            raise ValueError(f"levels {sorted(missing)} in support but not in scope")
        if n == 0:
            return 1 if u == TRUE else 0
        full = (1 << (1 << n)) - 1
        bitpos = {lvl: j for j, lvl in enumerate(levels)}
        node_levels, lows, highs = self._v, self._l, self._h
        memo: dict[int, int] = {}

        def rec(e: int) -> int:
            i = e >> 1
            if i == 0:
                base = 0
            else:
                base = memo.get(i)
                if base is None:
                    lo = rec(lows[i])
                    hi = rec(highs[i])
                    mask = row_mask(n, bitpos[node_levels[i]])
                    base = (lo & (full ^ mask)) | (hi & mask)
                    memo[i] = base
            return (full ^ base) if e & 1 else base

        return rec(u)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def clone_empty(self) -> "ArenaBDD":
        """Fresh manager of the same backend and cache sizing (no variables)."""
        return ArenaBDD(
            self._cache_slots,
            scalar_budget=self._scalar_budget,
        )

    def build_expr(self, op: str, *operands: int) -> int:
        """Apply a named operator (``and/or/xor/xnor/not/implies``) to operands."""
        ops: dict[str, Callable[..., int]] = {
            "and": self.conjoin,
            "or": self.disjoin,
        }
        if op in ops:
            return ops[op](operands)
        if op == "not":
            (f,) = operands
            return self.apply_not(f)
        binary = {
            "xor": self.apply_xor,
            "xnor": self.apply_xnor,
            "implies": self.apply_implies,
        }
        if op in binary:
            f, g = operands
            return binary[op](f, g)
        raise ValueError(f"unknown operator {op!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArenaBDD vars={self.num_vars} nodes={self.num_nodes}>"
