"""Portable BDD transfer: export function DAGs, re-import them elsewhere.

The task-graph engine's process executor (:mod:`repro.engine.executors`)
ships decomposition subproblems to worker processes.  BDD edges are manager
-local integers, so functions cross the process boundary as a
:class:`PortableDag`: the reachable node set of the exported roots in
child-before-parent order, plus the variable names of every level the DAG
mentions.  The encoding mirrors the manager's own edge representation
(``(index << 1) | complement``, index 0 = the terminal), which makes the
round-trip exact -- including complement edges -- and cheap.

Import is canonical: :func:`import_dag` rebuilds the nodes bottom-up
through the manager's find-or-create path, so importing into a manager that
already holds equal functions deduplicates against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.bdd.manager import BDD


@dataclass(frozen=True)
class PortableDag:
    """A manager-independent function DAG (picklable).

    Attributes:
        var_names: names of levels ``0 .. len(var_names) - 1``; the import
            manager must map them to the same level numbers.
        nodes: ``(level, low, high)`` triples in child-before-parent order;
            ``low``/``high`` are local edges ``(index << 1) | complement``
            where index 0 is the terminal and index ``i >= 1`` refers to
            ``nodes[i - 1]``.  Low edges are regular (the manager's
            canonical polarity rule), which import relies on.
        roots: the exported functions as local edges.
    """

    var_names: tuple[str, ...]
    nodes: tuple[tuple[int, int, int], ...] = field(default_factory=tuple)
    roots: tuple[int, ...] = field(default_factory=tuple)

    @property
    def num_nodes(self) -> int:
        """Number of internal (non-terminal) nodes in the exported DAG."""
        return len(self.nodes)


def export_dag(bdd: BDD, roots: Sequence[int]) -> PortableDag:
    """Serialize the functions ``roots`` of ``bdd`` as a :class:`PortableDag`.

    Only the reachable subgraph is exported.  Variable names are exported
    for *all* levels up to the manager's current count so the import side
    reproduces identical level numbering (levels are positional).  ``bdd``
    may be any backend (the walk uses only the shared manager API), and
    export/import across *different* backends is exact: both sides share
    the same canonical form.
    """
    # Map manager node index -> local index (0 = terminal), children first.
    local: dict[int, int] = {0: 0}
    nodes: list[tuple[int, int, int]] = []

    def visit(edge: int) -> None:
        stack = [edge]
        # Iterative postorder: push a node back once its children are local.
        while stack:
            e = stack.pop()
            idx = e >> 1
            if idx in local:
                continue
            low = bdd.low(e & ~1)  # children of the *regular* edge
            high = bdd.high(e & ~1)
            lo_i, hi_i = low >> 1, high >> 1
            if lo_i in local and hi_i in local:
                nodes.append(
                    (
                        bdd.level(e),
                        (local[lo_i] << 1) | (low & 1),
                        (local[hi_i] << 1) | (high & 1),
                    )
                )
                local[idx] = len(nodes)
            else:
                stack.append(e)
                if hi_i not in local:
                    stack.append(high)
                if lo_i not in local:
                    stack.append(low)

    for root in roots:
        visit(root)

    local_roots = tuple((local[r >> 1] << 1) | (r & 1) for r in roots)
    return PortableDag(
        var_names=tuple(bdd.var_name(lvl) for lvl in range(bdd.num_vars)),
        nodes=tuple(nodes),
        roots=local_roots,
    )


def import_dag(bdd: BDD, dag: PortableDag) -> list[int]:
    """Materialize ``dag`` in ``bdd``; return the root edges, in order.

    Missing variables are appended to the manager (levels must line up:
    the manager may only hold a prefix of ``dag.var_names``, with matching
    names, which is trivially true for a fresh manager).
    """
    for level, name in enumerate(dag.var_names):
        if level < bdd.num_vars:
            if bdd.var_name(level) != name:
                raise ValueError(
                    f"level {level} is {bdd.var_name(level)!r} in the target "
                    f"manager but {name!r} in the DAG"
                )
        else:
            bdd.add_var(name)

    # local index -> target edge of the regular node
    edges: list[int] = [0]
    for level, low, high in dag.nodes:
        lo = edges[low >> 1] ^ (low & 1)
        hi = edges[high >> 1] ^ (high & 1)
        # Low edges of exported nodes are regular, so mk reproduces the
        # node without polarity juggling (asserted by the canonicity rule).
        edges.append(bdd.mk(level, lo, hi))
    return [edges[r >> 1] ^ (r & 1) for r in dag.roots]
