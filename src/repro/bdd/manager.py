"""ROBDD node manager.

The manager owns every node and guarantees canonicity: two node ids are equal
if and only if the Boolean functions they root are equal.  Nodes are stored in
parallel lists (``_var``, ``_low``, ``_high``) indexed by node id; ids ``0``
and ``1`` are the terminal nodes.  The *unique table* maps
``(level, low, high)`` triples to node ids, and a *computed table* memoizes
ITE calls.

The public API works on raw integer node ids.  Most client code should use
:class:`repro.bdd.function.Function`, which wraps ids with operator
overloading; the manager methods remain available for performance-critical
inner loops (everything in :mod:`repro.imodec` uses them directly).

Variables are identified by *level* (an integer, 0 = topmost in the order)
and optionally carry a name.  The variable order is the creation order unless
:func:`repro.bdd.reorder.sift` is applied.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

#: Sentinel level of the two terminal nodes; larger than any variable level.
TERMINAL_LEVEL = 1 << 30

#: Node id of the constant-false terminal.
FALSE = 0
#: Node id of the constant-true terminal.
TRUE = 1


class BDD:
    """A reduced ordered BDD manager.

    Example::

        bdd = BDD()
        x, y = bdd.add_var("x"), bdd.add_var("y")
        f = bdd.apply_and(x, bdd.apply_not(y))   # x & ~y
        assert bdd.eval(f, {0: True, 1: False})
    """

    def __init__(self) -> None:
        # Parallel node arrays; slots 0/1 are the terminals.
        self._var: list[int] = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._low: list[int] = [0, 1]
        self._high: list[int] = [0, 1]
        # (level, low, high) -> node id
        self._unique: dict[tuple[int, int, int], int] = {}
        # (f, g, h) -> ite(f, g, h)
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        # Per-operation memo tables, cleared together with the ITE cache.
        self._op_caches: dict[str, dict] = {}
        self._var_names: list[str] = []
        self._name_to_level: dict[str, int] = {}

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------

    def add_var(self, name: str | None = None) -> int:
        """Create a new variable at the bottom of the order.

        Returns the node id of the positive literal.  ``name`` defaults to
        ``v<level>``.
        """
        level = len(self._var_names)
        if name is None:
            name = f"v{level}"
        if name in self._name_to_level:
            raise ValueError(f"variable name {name!r} already exists")
        self._var_names.append(name)
        self._name_to_level[name] = level
        return self._mk(level, FALSE, TRUE)

    def add_vars(self, count: int, prefix: str = "v") -> list[int]:
        """Create ``count`` fresh variables named ``<prefix>0..``; return literals."""
        start = len(self._var_names)
        return [self.add_var(f"{prefix}{start + i}") for i in range(count)]

    @property
    def num_vars(self) -> int:
        """Number of variables declared in this manager."""
        return len(self._var_names)

    def var(self, level: int) -> int:
        """Node id of the positive literal of the variable at ``level``."""
        self._check_level(level)
        return self._mk(level, FALSE, TRUE)

    def nvar(self, level: int) -> int:
        """Node id of the negative literal of the variable at ``level``."""
        self._check_level(level)
        return self._mk(level, TRUE, FALSE)

    def literal(self, level: int, positive: bool) -> int:
        """Positive or negative literal of ``level``."""
        return self.var(level) if positive else self.nvar(level)

    def var_name(self, level: int) -> str:
        """Name of the variable at ``level``."""
        self._check_level(level)
        return self._var_names[level]

    def level_of(self, name: str) -> int:
        """Level of the variable called ``name``."""
        return self._name_to_level[name]

    def _check_level(self, level: int) -> None:
        if not 0 <= level < len(self._var_names):
            raise ValueError(f"unknown variable level {level}")

    # ------------------------------------------------------------------
    # node construction and inspection
    # ------------------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (reduction rule)."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def level(self, u: int) -> int:
        """Level of node ``u`` (``TERMINAL_LEVEL`` for constants)."""
        return self._var[u]

    def low(self, u: int) -> int:
        """Else-child (variable = 0) of node ``u``."""
        return self._low[u]

    def high(self, u: int) -> int:
        """Then-child (variable = 1) of node ``u``."""
        return self._high[u]

    def is_terminal(self, u: int) -> bool:
        """True iff ``u`` is one of the constants."""
        return u <= 1

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ever allocated (including terminals)."""
        return len(self._var)

    def size(self, u: int) -> int:
        """Number of distinct nodes reachable from ``u`` (including terminals)."""
        seen: set[int] = set()
        stack = [u]
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            if not self.is_terminal(v):
                stack.append(self._low[v])
                stack.append(self._high[v])
        return len(seen)

    def descendants(self, u: int) -> set[int]:
        """Set of node ids reachable from ``u`` (including ``u`` and terminals)."""
        seen: set[int] = set()
        stack = [u]
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            if not self.is_terminal(v):
                stack.append(self._low[v])
                stack.append(self._high[v])
        return seen

    def clear_caches(self) -> None:
        """Drop all memoization tables (nodes are kept)."""
        self._ite_cache.clear()
        self._op_caches.clear()

    def cache_size(self) -> int:
        """Total number of memoized entries across all operation caches."""
        return len(self._ite_cache) + sum(len(c) for c in self._op_caches.values())

    def maybe_clear_caches(self, limit: int = 2_000_000) -> bool:
        """Clear the memo tables when they exceed ``limit`` entries.

        Long synthesis runs (hundreds of trial decompositions on one shared
        manager) would otherwise grow the caches without bound.  Returns True
        when a clear happened.
        """
        if self.cache_size() > limit:
            self.clear_caches()
            return True
        return False

    def _cache(self, name: str) -> dict:
        cache = self._op_caches.get(name)
        if cache is None:
            cache = self._op_caches[name] = {}
        return cache

    # ------------------------------------------------------------------
    # core Boolean operations
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | ~f & h``.  The workhorse of the package."""
        # Terminal cases.
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self._cofactors_at(f, top)
        g0, g1 = self._cofactors_at(g, top)
        h0, h1 = self._cofactors_at(h, top)
        r0 = self.ite(f0, g0, h0)
        r1 = self.ite(f1, g1, h1)
        result = self._mk(top, r0, r1)
        self._ite_cache[key] = result
        return result

    def _cofactors_at(self, u: int, level: int) -> tuple[int, int]:
        """(low, high) cofactors of ``u`` w.r.t. the variable at ``level``."""
        if self._var[u] == level:
            return self._low[u], self._high[u]
        return u, u

    def apply_not(self, f: int) -> int:
        """Complement of ``f``."""
        return self.ite(f, FALSE, TRUE)

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction ``f & g``."""
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction ``f | g``."""
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or ``f ^ g``."""
        return self.ite(f, self.apply_not(g), g)

    def apply_xnor(self, f: int, g: int) -> int:
        """Equivalence ``f == g`` as a function."""
        return self.ite(f, g, self.apply_not(g))

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self.ite(f, g, TRUE)

    def conjoin(self, fs: Iterable[int]) -> int:
        """Conjunction of an iterable of functions (TRUE for empty input)."""
        acc = TRUE
        for f in fs:
            acc = self.apply_and(acc, f)
            if acc == FALSE:
                return FALSE
        return acc

    def disjoin(self, fs: Iterable[int]) -> int:
        """Disjunction of an iterable of functions (FALSE for empty input)."""
        acc = FALSE
        for f in fs:
            acc = self.apply_or(acc, f)
            if acc == TRUE:
                return TRUE
        return acc

    # ------------------------------------------------------------------
    # cofactors, restriction, quantification, composition
    # ------------------------------------------------------------------

    def cofactor(self, u: int, level: int, value: bool) -> int:
        """Restrict variable ``level`` to ``value`` in ``u`` (Shannon cofactor)."""
        self._check_level(level)
        return self.restrict(u, {level: value})

    def restrict(self, u: int, assignment: Mapping[int, bool]) -> int:
        """Simultaneously fix the variables in ``assignment`` (level -> value)."""
        if not assignment:
            return u
        cache = self._cache("restrict")
        items = tuple(sorted(assignment.items()))

        def walk(v: int) -> int:
            if self.is_terminal(v):
                return v
            lvl = self._var[v]
            key = (v, items)
            hit = cache.get(key)
            if hit is not None:
                return hit
            if lvl in assignment:
                result = walk(self._high[v] if assignment[lvl] else self._low[v])
            else:
                r0 = walk(self._low[v])
                r1 = walk(self._high[v])
                result = self._mk(lvl, r0, r1)
            cache[key] = result
            return result

        return walk(u)

    def exists(self, u: int, levels: Iterable[int]) -> int:
        """Existential quantification of ``levels`` from ``u``."""
        lvlset = frozenset(levels)
        if not lvlset:
            return u
        cache = self._cache("exists")

        def walk(v: int) -> int:
            if self.is_terminal(v):
                return v
            lvl = self._var[v]
            key = (v, lvlset)
            hit = cache.get(key)
            if hit is not None:
                return hit
            r0 = walk(self._low[v])
            r1 = walk(self._high[v])
            if lvl in lvlset:
                result = self.apply_or(r0, r1)
            else:
                result = self._mk(lvl, r0, r1)
            cache[key] = result
            return result

        return walk(u)

    def forall(self, u: int, levels: Iterable[int]) -> int:
        """Universal quantification of ``levels`` from ``u``."""
        return self.apply_not(self.exists(self.apply_not(u), levels))

    def compose(self, u: int, substitution: Mapping[int, int]) -> int:
        """Simultaneous substitution of functions for variables.

        ``substitution`` maps variable levels to node ids; every occurrence of
        the variable is replaced by the corresponding function.  The
        substitution is simultaneous (not iterated), implemented by the usual
        recursive ITE formulation.
        """
        if not substitution:
            return u
        cache = self._cache("compose")
        items = tuple(sorted(substitution.items()))

        def walk(v: int) -> int:
            if self.is_terminal(v):
                return v
            key = (v, items)
            hit = cache.get(key)
            if hit is not None:
                return hit
            lvl = self._var[v]
            r0 = walk(self._low[v])
            r1 = walk(self._high[v])
            branch = substitution.get(lvl)
            if branch is None:
                branch = self.var(lvl)
            result = self.ite(branch, r1, r0)
            cache[key] = result
            return result

        return walk(u)

    def rename(self, u: int, mapping: Mapping[int, int]) -> int:
        """Rename variables (level -> level) via composition with literals."""
        return self.compose(u, {old: self.var(new) for old, new in mapping.items()})

    # ------------------------------------------------------------------
    # evaluation, support, satisfiability
    # ------------------------------------------------------------------

    def eval(self, u: int, assignment: Mapping[int, bool]) -> bool:
        """Evaluate ``u`` under a (complete-enough) level -> value assignment."""
        while not self.is_terminal(u):
            lvl = self._var[u]
            u = self._high[u] if assignment[lvl] else self._low[u]
        return u == TRUE

    def support(self, u: int) -> set[int]:
        """Set of variable levels ``u`` depends on."""
        levels: set[int] = set()
        for v in self.descendants(u):
            if not self.is_terminal(v):
                levels.add(self._var[v])
        return levels

    def sat_one(self, u: int) -> dict[int, bool] | None:
        """One satisfying partial assignment (level -> value), or None.

        Variables not mentioned may take any value.
        """
        if u == FALSE:
            return None
        assignment: dict[int, bool] = {}
        while not self.is_terminal(u):
            lvl = self._var[u]
            if self._low[u] != FALSE:
                assignment[lvl] = False
                u = self._low[u]
            else:
                assignment[lvl] = True
                u = self._high[u]
        return assignment

    def iter_sat(self, u: int, levels: Sequence[int]) -> Iterator[dict[int, bool]]:
        """Enumerate all total assignments over ``levels`` satisfying ``u``.

        ``levels`` must cover the support of ``u``; variables outside the
        support are expanded to both values (so the iterator yields exactly
        the minterms over the given scope).
        """
        order = sorted(levels)
        support = self.support(u)
        missing = support - set(order)
        if missing:
            raise ValueError(f"levels {sorted(missing)} in support but not in scope")

        def rec(v: int, idx: int, partial: dict[int, bool]) -> Iterator[dict[int, bool]]:
            if v == FALSE:
                return
            if idx == len(order):
                yield dict(partial)
                return
            lvl = order[idx]
            for value in (False, True):
                if not self.is_terminal(v) and self._var[v] == lvl:
                    child = self._high[v] if value else self._low[v]
                else:
                    child = v
                partial[lvl] = value
                yield from rec(child, idx + 1, partial)
            del partial[lvl]

        yield from rec(u, 0, {})

    # ------------------------------------------------------------------
    # building from other representations
    # ------------------------------------------------------------------

    def cube(self, literals: Mapping[int, bool]) -> int:
        """Conjunction of literals, given as level -> polarity."""
        result = TRUE
        for lvl in sorted(literals, reverse=True):
            result = self._mk(lvl, FALSE, result) if literals[lvl] else self._mk(lvl, result, FALSE)
        return result

    def minterm(self, levels: Sequence[int], values: Sequence[bool]) -> int:
        """Minterm over ``levels`` with the given ``values``."""
        if len(levels) != len(values):
            raise ValueError("levels and values must have equal length")
        return self.cube(dict(zip(levels, values)))

    def from_truth_bits(self, bits: int, levels: Sequence[int]) -> int:
        """Build a BDD from a bit-packed truth table over ``levels``.

        Bit ``i`` of ``bits`` is the function value for the input assignment
        where ``levels[j]`` takes bit ``j`` of ``i`` (LSB-first convention,
        matching :class:`repro.boolfunc.truthtable.TruthTable`).  The levels
        need not be sorted; the BDD is built respecting the manager's order.
        """
        n = len(levels)
        if len(set(levels)) != n:
            raise ValueError("duplicate levels")
        full = (1 << (1 << n)) - 1 if n else 1
        # (level, bit position in the row index), topmost level first.
        pairs = sorted((lvl, j) for j, lvl in enumerate(levels))
        return self._from_bits_rec(bits & full, pairs, n)

    def _from_bits_rec(self, bits: int, pairs: list[tuple[int, int]], n: int) -> int:
        if n == 0:
            return TRUE if bits & 1 else FALSE
        level, bitpos = pairs[0]
        # Split the rows on this variable's bit; renumber by dropping the bit.
        lo_bits = 0
        hi_bits = 0
        low_mask = (1 << bitpos) - 1
        for row in range(1 << n):
            if not (bits >> row) & 1:
                continue
            sub = ((row >> (bitpos + 1)) << bitpos) | (row & low_mask)
            if (row >> bitpos) & 1:
                hi_bits |= 1 << sub
            else:
                lo_bits |= 1 << sub
        rest = [(lvl, p - 1 if p > bitpos else p) for lvl, p in pairs[1:]]
        lo = self._from_bits_rec(lo_bits, rest, n - 1)
        hi = self._from_bits_rec(hi_bits, rest, n - 1)
        return self._mk(level, lo, hi)

    def to_truth_bits(self, u: int, levels: Sequence[int]) -> int:
        """Bit-packed truth table of ``u`` over ``levels`` (LSB-first rows)."""
        n = len(levels)
        support = self.support(u)
        missing = support - set(levels)
        if missing:
            raise ValueError(f"levels {sorted(missing)} in support but not in scope")
        bits = 0
        for row in range(1 << n):
            assignment = {levels[j]: bool((row >> j) & 1) for j in range(n)}
            if self.eval(u, assignment):
                bits |= 1 << row
        return bits

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def build_expr(
        self,
        op: str,
        *operands: int,
    ) -> int:
        """Apply a named operator (``and/or/xor/xnor/not/implies``) to operands."""
        ops: dict[str, Callable[..., int]] = {
            "and": self.conjoin,
            "or": self.disjoin,
        }
        if op in ops:
            return ops[op](operands)
        if op == "not":
            (f,) = operands
            return self.apply_not(f)
        binary = {
            "xor": self.apply_xor,
            "xnor": self.apply_xnor,
            "implies": self.apply_implies,
        }
        if op in binary:
            f, g = operands
            return binary[op](f, g)
        raise ValueError(f"unknown operator {op!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BDD vars={self.num_vars} nodes={self.num_nodes}>"
