"""ROBDD node manager with complement (negated) edges.

The manager owns every node and guarantees canonicity: two *edges* are equal
if and only if the Boolean functions they root are equal.  An edge is an
integer ``(node_index << 1) | polarity``: the low bit is the complement
attribute, so negation is a single XOR (``apply_not`` is O(1)) and a function
and its complement share the entire node subgraph.

There is a single terminal node (index 0) whose base function is constant
false; the edge ``0`` is therefore the false function and the complemented
edge ``1`` is true.  The module-level :data:`FALSE` / :data:`TRUE` constants
keep the same numeric values as the pre-complement-edge engine, so client
code comparing against them is unaffected.

Canonical polarity rule: the *low* (else) edge of every stored node is
regular (uncomplemented).  When a reduction produces a complemented low edge,
the node is stored with both children complemented and the complement is
pushed to the incoming edge -- this picks exactly one of the two equivalent
representations of every function and makes the unique table collision-free
under negation.  See ``docs/ENGINE.md`` for the full invariant catalogue.

Boolean operations run through specialized iterative apply kernels (AND and
XOR; OR/XNOR/IMPLIES are O(1) De Morgan wrappers) instead of the generic
``ite``.  All memoization lives in a single size-bounded operation cache with
hit/miss/eviction counters (:meth:`BDD.cache_stats`); when the cache exceeds
``cache_limit`` entries the oldest half is dropped (insertion-order FIFO), so
long synthesis runs need no manual cache management.  (The historical
``maybe_clear_caches`` pressure valve is gone; size the cache with the
``cache_limit`` constructor argument and monitor it with ``cache_stats()``.)

The public API works on raw integer edges (historically called "node ids";
the terms are used interchangeably below).  Most client code should use
:class:`repro.bdd.function.Function`, which wraps edges with operator
overloading; the manager methods remain available for performance-critical
inner loops (everything in :mod:`repro.imodec` uses them directly).

Variables are identified by *level* (an integer, 0 = topmost in the order)
and optionally carry a name.  The variable order is the creation order unless
:func:`repro.bdd.reorder.sift` is applied.
"""

from __future__ import annotations

from itertools import islice
from typing import Callable, Iterable, Iterator, Mapping, Sequence

#: Sentinel level of the terminal node; larger than any variable level.
TERMINAL_LEVEL = 1 << 30

#: Edge of the constant-false function (terminal node, regular polarity).
FALSE = 0
#: Edge of the constant-true function (terminal node, complemented).
TRUE = 1

#: Default bound on the unified operation cache (entries).
DEFAULT_CACHE_LIMIT = 1 << 21

# Operation tags of the unified cache.  Keys are tuples whose first element
# is one of these, so every operation shares one bounded table.
_OP_AND = 0
_OP_XOR = 1
_OP_ITE = 2
_OP_RESTRICT = 3
_OP_EXISTS = 4
_OP_COMPOSE = 5

#: Bound on the per-root support memo (entries); cleared wholesale when hit.
_SUPPORT_CACHE_LIMIT = 1 << 17

# Cached row masks for truth-table construction: _row_mask(n, j) has bit r
# set iff bit j of the row index r is set, for tables of 2**n rows.
_ROW_MASKS: dict[tuple[int, int], int] = {}


def row_mask(n: int, j: int) -> int:
    """Mask over ``2**n`` table rows selecting rows whose bit ``j`` is set.

    Shared by :meth:`BDD.to_truth_bits` and the truth-table scoring fast path
    in :mod:`repro.partitioning.ttscore`.
    """
    mask = _ROW_MASKS.get((n, j))
    if mask is None:
        half = 1 << j
        mask = ((1 << half) - 1) << half
        width = half * 2
        total = 1 << n
        while width < total:
            mask |= mask << width
            width *= 2
        _ROW_MASKS[(n, j)] = mask
    return mask


class BDD:
    """A reduced ordered BDD manager with complement edges.

    Example::

        bdd = BDD()
        x, y = bdd.add_var("x"), bdd.add_var("y")
        f = bdd.apply_and(x, bdd.apply_not(y))   # x & ~y
        assert bdd.eval(f, {0: True, 1: False})
    """

    #: Registry name of this implementation (see :mod:`repro.bdd.backend`).
    backend_name = "object"

    def __init__(self, cache_limit: int = DEFAULT_CACHE_LIMIT) -> None:
        # Parallel node arrays indexed by node index (edge >> 1); slot 0 is
        # the terminal.  Its children point at itself so edge traversal of a
        # terminal is a fixed point, as in the pre-complement-edge engine.
        self._level: list[int] = [TERMINAL_LEVEL]
        self._low: list[int] = [0]
        self._high: list[int] = [0]
        # (level, low, high) -> node index; low is always a regular edge.
        self._unique: dict[tuple[int, int, int], int] = {}
        # Unified bounded operation cache; see _evict().
        self._ops: dict = {}
        self._cache_limit = cache_limit
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        # node index -> frozenset of support levels, for queried roots.
        self._support_cache: dict[int, frozenset[int]] = {}
        self._var_names: list[str] = []
        self._name_to_level: dict[str, int] = {}

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------

    def add_var(self, name: str | None = None) -> int:
        """Create a new variable at the bottom of the order.

        Returns the edge of the positive literal.  ``name`` defaults to
        ``v<level>``.
        """
        level = len(self._var_names)
        if name is None:
            name = f"v{level}"
        if name in self._name_to_level:
            raise ValueError(f"variable name {name!r} already exists")
        self._var_names.append(name)
        self._name_to_level[name] = level
        return self._mk(level, FALSE, TRUE)

    def add_vars(self, count: int, prefix: str = "v") -> list[int]:
        """Create ``count`` fresh variables named ``<prefix>0..``; return literals."""
        start = len(self._var_names)
        return [self.add_var(f"{prefix}{start + i}") for i in range(count)]

    @property
    def num_vars(self) -> int:
        """Number of variables declared in this manager."""
        return len(self._var_names)

    def var(self, level: int) -> int:
        """Edge of the positive literal of the variable at ``level``."""
        self._check_level(level)
        return self._mk(level, FALSE, TRUE)

    def nvar(self, level: int) -> int:
        """Edge of the negative literal of the variable at ``level``."""
        self._check_level(level)
        return self._mk(level, TRUE, FALSE)

    def literal(self, level: int, positive: bool) -> int:
        """Positive or negative literal of ``level``."""
        return self.var(level) if positive else self.nvar(level)

    def var_name(self, level: int) -> str:
        """Name of the variable at ``level``."""
        self._check_level(level)
        return self._var_names[level]

    def level_of(self, name: str) -> int:
        """Level of the variable called ``name``."""
        return self._name_to_level[name]

    def _check_level(self, level: int) -> None:
        if not 0 <= level < len(self._var_names):
            raise ValueError(f"unknown variable level {level}")

    # ------------------------------------------------------------------
    # node construction and inspection
    # ------------------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the edge for ``(level, low, high)``.

        Applies the reduction rule (equal children collapse) and the
        canonical polarity rule (stored low edges are regular; a complemented
        low pushes the complement to the returned edge).
        """
        if low == high:
            return low
        if low & 1:
            key = (level, low ^ 1, high ^ 1)
            node = self._unique.get(key)
            if node is None:
                node = len(self._level)
                self._level.append(level)
                self._low.append(low ^ 1)
                self._high.append(high ^ 1)
                self._unique[key] = node
            return (node << 1) | 1
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node << 1

    def mk(self, level: int, low: int, high: int) -> int:
        """Public canonical find-or-create (the transfer/import seam).

        Both backends expose this so :mod:`repro.bdd.transfer` and the
        reorder rebuilds can materialize nodes without reaching into
        implementation internals.
        """
        return self._mk(level, low, high)

    def clone_empty(self) -> "BDD":
        """Fresh manager of the same backend and cache sizing (no variables)."""
        return BDD(self._cache_limit)

    def level(self, u: int) -> int:
        """Level of edge ``u`` (``TERMINAL_LEVEL`` for constants)."""
        return self._level[u >> 1]

    def low(self, u: int) -> int:
        """Else-child (variable = 0) of edge ``u``, complement propagated."""
        return self._low[u >> 1] ^ (u & 1)

    def high(self, u: int) -> int:
        """Then-child (variable = 1) of edge ``u``, complement propagated."""
        return self._high[u >> 1] ^ (u & 1)

    def is_terminal(self, u: int) -> bool:
        """True iff ``u`` is one of the constants."""
        return u <= 1

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ever allocated (including the terminal)."""
        return len(self._level)

    def size(self, u: int) -> int:
        """Number of distinct functions (edges) reachable from ``u``.

        This counts the nodes of the equivalent complement-free ROBDD
        (including terminals), so it is directly comparable with sizes
        reported by engines without complement edges.
        """
        lows = self._low
        highs = self._high
        seen: set[int] = set()
        add = seen.add
        stack = [u]
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            add(v)
            i = v >> 1
            if i:
                c = v & 1
                stack.append(lows[i] ^ c)
                stack.append(highs[i] ^ c)
        return len(seen)

    def descendants(self, u: int) -> set[int]:
        """Set of edges reachable from ``u`` (including ``u`` and terminals)."""
        lows = self._low
        highs = self._high
        seen: set[int] = set()
        add = seen.add
        stack = [u]
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            add(v)
            i = v >> 1
            if i:
                c = v & 1
                stack.append(lows[i] ^ c)
                stack.append(highs[i] ^ c)
        return seen

    # ------------------------------------------------------------------
    # the unified bounded operation cache
    # ------------------------------------------------------------------

    def clear_caches(self) -> None:
        """Drop all memoization tables (nodes are kept)."""
        self._ops.clear()
        self._support_cache.clear()

    def cache_size(self) -> int:
        """Number of memoized entries in the unified operation cache."""
        return len(self._ops)

    def cache_stats(self) -> dict:
        """Counters of the unified operation cache (and the node count)."""
        total = self._hits + self._misses
        return {
            "entries": len(self._ops),
            "hits": self._hits,
            "misses": self._misses,
            "hit_rate": self._hits / total if total else 0.0,
            "evictions": self._evictions,
            "nodes": len(self._level),
        }

    def _evict(self) -> None:
        """Drop the oldest half of the operation cache (insertion order)."""
        ops = self._ops
        drop = len(ops) // 2
        if drop:
            for key in list(islice(iter(ops), drop)):
                del ops[key]
            self._evictions += 1

    def _maybe_evict(self) -> None:
        # A single operation can insert many entries before this runs, so
        # keep halving until the bound actually holds.
        while len(self._ops) > self._cache_limit:
            self._evict()

    # ------------------------------------------------------------------
    # core Boolean operations: specialized apply kernels
    # ------------------------------------------------------------------

    def apply_not(self, f: int) -> int:
        """Complement of ``f`` -- a single XOR on the complement attribute."""
        return f ^ 1

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction ``f & g`` (iterative apply kernel)."""
        # Trivial cases that need no machinery.
        if f == g:
            return f
        if f ^ g == 1:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE:
            return f
        if f == FALSE or g == FALSE:
            return FALSE

        levels = self._level
        lows = self._low
        highs = self._high
        unique = self._unique
        ops = self._ops
        hits = 0
        misses = 0
        # Explicit-stack apply: mode 0 expands a (f, g) subproblem, mode 1
        # combines the two child results into a node and fills the cache.
        tasks: list[tuple] = [(0, f, g)]
        pop = tasks.pop
        push = tasks.append
        results: list[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            mode, a, b = pop()
            if mode:
                # a = cache key, b = branching level.
                r1 = rpop()
                r0 = rpop()
                if r0 == r1:
                    res = r0
                elif r0 & 1:
                    key2 = (b, r0 ^ 1, r1 ^ 1)
                    node = unique.get(key2)
                    if node is None:
                        node = len(levels)
                        levels.append(b)
                        lows.append(r0 ^ 1)
                        highs.append(r1 ^ 1)
                        unique[key2] = node
                    res = (node << 1) | 1
                else:
                    key2 = (b, r0, r1)
                    node = unique.get(key2)
                    if node is None:
                        node = len(levels)
                        levels.append(b)
                        lows.append(r0)
                        highs.append(r1)
                        unique[key2] = node
                    res = node << 1
                ops[a] = res
                rpush(res)
                continue
            if a == b:
                rpush(a)
                continue
            if a ^ b == 1 or a == FALSE or b == FALSE:
                rpush(FALSE)
                continue
            if a == TRUE:
                rpush(b)
                continue
            if b == TRUE:
                rpush(a)
                continue
            if a > b:
                a, b = b, a
            key = (_OP_AND, a, b)
            res = ops.get(key)
            if res is not None:
                hits += 1
                rpush(res)
                continue
            misses += 1
            ia = a >> 1
            ib = b >> 1
            la = levels[ia]
            lb = levels[ib]
            if la <= lb:
                ca = a & 1
                a0 = lows[ia] ^ ca
                a1 = highs[ia] ^ ca
                top = la
            else:
                a0 = a1 = a
                top = lb
            if lb <= la:
                cb = b & 1
                b0 = lows[ib] ^ cb
                b1 = highs[ib] ^ cb
            else:
                b0 = b1 = b
            push((1, key, top))
            push((0, a1, b1))
            push((0, a0, b0))
        self._hits += hits
        self._misses += misses
        self._maybe_evict()
        return results[0]

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or ``f ^ g`` (iterative apply kernel).

        Complement attributes factor out of XOR entirely
        (``(F^a) xor (G^b) == (F xor G) ^ (a^b)``), so the kernel recurses
        and caches on polarity-stripped edges only -- every cache entry
        serves four polarity combinations.
        """
        pol = (f ^ g) & 1
        a = f & -2
        b = g & -2
        if a == b:
            return pol
        if a == FALSE:
            return b ^ pol
        if b == FALSE:
            return a ^ pol

        levels = self._level
        lows = self._low
        highs = self._high
        unique = self._unique
        ops = self._ops
        hits = 0
        misses = 0
        tasks: list[tuple] = [(0, a, b, pol)]
        pop = tasks.pop
        push = tasks.append
        results: list[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            mode, a, b, pol = pop()
            if mode:
                # a = cache key, b = branching level.
                r1 = rpop()
                r0 = rpop()
                if r0 == r1:
                    res = r0
                elif r0 & 1:
                    key2 = (b, r0 ^ 1, r1 ^ 1)
                    node = unique.get(key2)
                    if node is None:
                        node = len(levels)
                        levels.append(b)
                        lows.append(r0 ^ 1)
                        highs.append(r1 ^ 1)
                        unique[key2] = node
                    res = (node << 1) | 1
                else:
                    key2 = (b, r0, r1)
                    node = unique.get(key2)
                    if node is None:
                        node = len(levels)
                        levels.append(b)
                        lows.append(r0)
                        highs.append(r1)
                        unique[key2] = node
                    res = node << 1
                ops[a] = res
                rpush(res ^ pol)
                continue
            pol ^= (a ^ b) & 1
            a &= -2
            b &= -2
            if a == b:
                rpush(pol)
                continue
            if a == FALSE:
                rpush(b ^ pol)
                continue
            if b == FALSE:
                rpush(a ^ pol)
                continue
            if a > b:
                a, b = b, a
            key = (_OP_XOR, a, b)
            res = ops.get(key)
            if res is not None:
                hits += 1
                rpush(res ^ pol)
                continue
            misses += 1
            ia = a >> 1
            ib = b >> 1
            la = levels[ia]
            lb = levels[ib]
            if la <= lb:
                a0 = lows[ia]
                a1 = highs[ia]
                top = la
            else:
                a0 = a1 = a
                top = lb
            if lb <= la:
                b0 = lows[ib]
                b1 = highs[ib]
            else:
                b0 = b1 = b
            push((1, key, top, pol))
            push((0, a1, b1, 0))
            push((0, a0, b0, 0))
        self._hits += hits
        self._misses += misses
        self._maybe_evict()
        return results[0]

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction ``f | g`` -- De Morgan over the AND kernel."""
        return self.apply_and(f ^ 1, g ^ 1) ^ 1

    def apply_xnor(self, f: int, g: int) -> int:
        """Equivalence ``f == g`` as a function."""
        return self.apply_xor(f, g) ^ 1

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``f -> g`` (``~(f & ~g)``)."""
        return self.apply_and(f, g ^ 1) ^ 1

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | ~f & h``.

        Constant and degenerate operand patterns dispatch to the specialized
        kernels; only genuine three-operand calls take the recursive path.
        """
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == (h ^ 1):
            return self.apply_xor(f, h)
        if h == FALSE:
            return self.apply_and(f, g)
        if h == TRUE:
            return self.apply_and(f, g ^ 1) ^ 1
        if g == FALSE:
            return self.apply_and(f ^ 1, h)
        if g == TRUE:
            return self.apply_and(f ^ 1, h ^ 1) ^ 1
        if f == g:
            return self.apply_and(f ^ 1, h ^ 1) ^ 1
        if f == (g ^ 1):
            return self.apply_and(f ^ 1, h)
        if f == h:
            return self.apply_and(f, g)
        if f == (h ^ 1):
            return self.apply_and(f, g ^ 1) ^ 1
        # Canonical triple: uncomplemented f (swap branches) and
        # uncomplemented g (push the complement to the result).
        if f & 1:
            f, g, h = f ^ 1, h, g
        pol = g & 1
        if pol:
            g ^= 1
            h ^= 1
        key = (_OP_ITE, f, g, h)
        res = self._ops.get(key)
        if res is not None:
            self._hits += 1
            return res ^ pol
        self._misses += 1
        levels = self._level
        top = min(levels[f >> 1], levels[g >> 1], levels[h >> 1])
        f0, f1 = self._cofactors_at(f, top)
        g0, g1 = self._cofactors_at(g, top)
        h0, h1 = self._cofactors_at(h, top)
        r0 = self.ite(f0, g0, h0)
        r1 = self.ite(f1, g1, h1)
        res = self._mk(top, r0, r1)
        self._ops[key] = res
        self._maybe_evict()
        return res ^ pol

    def _cofactors_at(self, u: int, level: int) -> tuple[int, int]:
        """(low, high) cofactors of ``u`` w.r.t. the variable at ``level``."""
        i = u >> 1
        if self._level[i] == level:
            c = u & 1
            return self._low[i] ^ c, self._high[i] ^ c
        return u, u

    def conjoin(self, fs: Iterable[int]) -> int:
        """Conjunction of an iterable of functions (TRUE for empty input)."""
        acc = TRUE
        for f in fs:
            acc = self.apply_and(acc, f)
            if acc == FALSE:
                return FALSE
        return acc

    def disjoin(self, fs: Iterable[int]) -> int:
        """Disjunction of an iterable of functions (FALSE for empty input)."""
        acc = FALSE
        for f in fs:
            acc = self.apply_or(acc, f)
            if acc == TRUE:
                return TRUE
        return acc

    # ------------------------------------------------------------------
    # cofactors, restriction, quantification, composition
    # ------------------------------------------------------------------

    def cofactor(self, u: int, level: int, value: bool) -> int:
        """Restrict variable ``level`` to ``value`` in ``u`` (Shannon cofactor)."""
        self._check_level(level)
        return self._restrict1(u, level, bool(value))

    def restrict(self, u: int, assignment: Mapping[int, bool]) -> int:
        """Simultaneously fix the variables in ``assignment`` (level -> value).

        Complement attributes factor out of restriction, so memoization is
        per base node: restricting ``f`` also warms the cache for ``~f``.
        """
        if not assignment:
            return u
        if len(assignment) == 1:
            ((lvl, val),) = assignment.items()
            return self._restrict1(u, lvl, bool(val))
        items = tuple(sorted(assignment.items()))
        max_level = items[-1][0]
        levels = self._level
        lows = self._low
        highs = self._high
        ops = self._ops

        def walk(v: int) -> int:
            i = v >> 1
            if i == 0:
                return v
            lvl = levels[i]
            if lvl > max_level:
                return v
            c = v & 1
            base = v ^ c
            key = (_OP_RESTRICT, base, items)
            res = ops.get(key)
            if res is None:
                if lvl in assignment:
                    res = walk(highs[i] if assignment[lvl] else lows[i])
                else:
                    r0 = walk(lows[i])
                    r1 = walk(highs[i])
                    res = self._mk(lvl, r0, r1)
                ops[key] = res
            return res ^ c

        result = walk(u)
        self._maybe_evict()
        return result

    def _restrict1(self, u: int, lvl: int, val: bool) -> int:
        """Single-variable restriction (the bound-set cofactoring hot path)."""
        levels = self._level
        lows = self._low
        highs = self._high
        ops = self._ops
        hits = 0
        misses = 0

        def walk(v: int) -> int:
            nonlocal hits, misses
            i = v >> 1
            if i == 0:
                return v
            node_level = levels[i]
            if node_level > lvl:
                return v
            c = v & 1
            if node_level == lvl:
                return (highs[i] if val else lows[i]) ^ c
            base = v ^ c
            key = (_OP_RESTRICT, base, lvl, val)
            res = ops.get(key)
            if res is not None:
                hits += 1
                return res ^ c
            misses += 1
            r0 = walk(lows[i])
            r1 = walk(highs[i])
            res = self._mk(node_level, r0, r1)
            ops[key] = res
            return res ^ c

        result = walk(u)
        self._hits += hits
        self._misses += misses
        self._maybe_evict()
        return result

    def exists(self, u: int, levels: Iterable[int]) -> int:
        """Existential quantification of ``levels`` from ``u``."""
        lvlset = frozenset(levels)
        if not lvlset:
            return u
        max_level = max(lvlset)
        node_levels = self._level
        lows = self._low
        highs = self._high
        ops = self._ops

        def walk(v: int) -> int:
            i = v >> 1
            if i == 0:
                return v
            lvl = node_levels[i]
            if lvl > max_level:
                return v
            key = (_OP_EXISTS, v, lvlset)
            res = ops.get(key)
            if res is not None:
                self._hits += 1
                return res
            self._misses += 1
            c = v & 1
            r0 = walk(lows[i] ^ c)
            r1 = walk(highs[i] ^ c)
            if lvl in lvlset:
                res = self.apply_and(r0 ^ 1, r1 ^ 1) ^ 1
            else:
                res = self._mk(lvl, r0, r1)
            ops[key] = res
            return res

        result = walk(u)
        self._maybe_evict()
        return result

    def forall(self, u: int, levels: Iterable[int]) -> int:
        """Universal quantification of ``levels`` from ``u``."""
        return self.exists(u ^ 1, levels) ^ 1

    def compose(self, u: int, substitution: Mapping[int, int]) -> int:
        """Simultaneous substitution of functions for variables.

        ``substitution`` maps variable levels to edges; every occurrence of
        the variable is replaced by the corresponding function.  The
        substitution is simultaneous (not iterated), implemented by the usual
        recursive ITE formulation.  Complement attributes factor out, so the
        memo is per base node.
        """
        if not substitution:
            return u
        items = tuple(sorted(substitution.items()))
        max_level = items[-1][0]
        node_levels = self._level
        lows = self._low
        highs = self._high
        ops = self._ops

        def walk(v: int) -> int:
            i = v >> 1
            if i == 0:
                return v
            lvl = node_levels[i]
            if lvl > max_level:
                return v
            c = v & 1
            base = v ^ c
            key = (_OP_COMPOSE, base, items)
            res = ops.get(key)
            if res is None:
                self._misses += 1
                r0 = walk(lows[i])
                r1 = walk(highs[i])
                branch = substitution.get(lvl)
                if branch is None:
                    branch = self.var(lvl)
                res = self.ite(branch, r1, r0)
                ops[key] = res
            else:
                self._hits += 1
            return res ^ c

        result = walk(u)
        self._maybe_evict()
        return result

    def rename(self, u: int, mapping: Mapping[int, int]) -> int:
        """Rename variables (level -> level) via composition with literals."""
        return self.compose(u, {old: self.var(new) for old, new in mapping.items()})

    # ------------------------------------------------------------------
    # evaluation, support, satisfiability
    # ------------------------------------------------------------------

    def eval(self, u: int, assignment: Mapping[int, bool]) -> bool:
        """Evaluate ``u`` under a (complete-enough) level -> value assignment."""
        levels = self._level
        lows = self._low
        highs = self._high
        while u > 1:
            i = u >> 1
            u = (highs[i] if assignment[levels[i]] else lows[i]) ^ (u & 1)
        return u == TRUE

    def support(self, u: int) -> frozenset[int]:
        """Set of variable levels ``u`` depends on.

        Complements do not change the support, so results are memoized per
        node index and shared between a function and its negation.  The
        returned frozenset is the cached object -- do not mutate-by-identity.
        """
        root = u >> 1
        if root == 0:
            return frozenset()
        cache = self._support_cache
        cached = cache.get(root)
        if cached is not None:
            return cached
        node_levels = self._level
        lows = self._low
        highs = self._high
        found: set[int] = set()
        seen = {0, root}
        stack = [root]
        add_level = found.add
        while stack:
            i = stack.pop()
            add_level(node_levels[i])
            lo = lows[i] >> 1
            hi = highs[i] >> 1
            if lo not in seen:
                seen.add(lo)
                stack.append(lo)
            if hi not in seen:
                seen.add(hi)
                stack.append(hi)
        result = frozenset(found)
        if len(cache) > _SUPPORT_CACHE_LIMIT:
            cache.clear()
        cache[root] = result
        return result

    def sat_one(self, u: int) -> dict[int, bool] | None:
        """One satisfying partial assignment (level -> value), or None.

        Variables not mentioned may take any value.
        """
        if u == FALSE:
            return None
        levels = self._level
        lows = self._low
        highs = self._high
        assignment: dict[int, bool] = {}
        while u > 1:
            i = u >> 1
            c = u & 1
            lo = lows[i] ^ c
            lvl = levels[i]
            if lo != FALSE:
                assignment[lvl] = False
                u = lo
            else:
                assignment[lvl] = True
                u = highs[i] ^ c
        return assignment

    def iter_sat(self, u: int, levels: Sequence[int]) -> Iterator[dict[int, bool]]:
        """Enumerate all total assignments over ``levels`` satisfying ``u``.

        ``levels`` must cover the support of ``u``; variables outside the
        support are expanded to both values (so the iterator yields exactly
        the minterms over the given scope).
        """
        order = sorted(levels)
        support = self.support(u)
        missing = support - set(order)
        if missing:
            raise ValueError(f"levels {sorted(missing)} in support but not in scope")

        def rec(v: int, idx: int, partial: dict[int, bool]) -> Iterator[dict[int, bool]]:
            if v == FALSE:
                return
            if idx == len(order):
                yield dict(partial)
                return
            lvl = order[idx]
            i = v >> 1
            for value in (False, True):
                if i and self._level[i] == lvl:
                    child = (self._high[i] if value else self._low[i]) ^ (v & 1)
                else:
                    child = v
                partial[lvl] = value
                yield from rec(child, idx + 1, partial)
            del partial[lvl]

        yield from rec(u, 0, {})

    # ------------------------------------------------------------------
    # building from other representations
    # ------------------------------------------------------------------

    def cube(self, literals: Mapping[int, bool]) -> int:
        """Conjunction of literals, given as level -> polarity."""
        result = TRUE
        for lvl in sorted(literals, reverse=True):
            result = self._mk(lvl, FALSE, result) if literals[lvl] else self._mk(lvl, result, FALSE)
        return result

    def minterm(self, levels: Sequence[int], values: Sequence[bool]) -> int:
        """Minterm over ``levels`` with the given ``values``."""
        if len(levels) != len(values):
            raise ValueError("levels and values must have equal length")
        return self.cube(dict(zip(levels, values)))

    def from_truth_bits(self, bits: int, levels: Sequence[int]) -> int:
        """Build a BDD from a bit-packed truth table over ``levels``.

        Bit ``i`` of ``bits`` is the function value for the input assignment
        where ``levels[j]`` takes bit ``j`` of ``i`` (LSB-first convention,
        matching :class:`repro.boolfunc.truthtable.TruthTable`).  The levels
        need not be sorted; the BDD is built respecting the manager's order.
        """
        n = len(levels)
        if len(set(levels)) != n:
            raise ValueError("duplicate levels")
        full = (1 << (1 << n)) - 1 if n else 1
        # (level, bit position in the row index), topmost level first.
        pairs = sorted((lvl, j) for j, lvl in enumerate(levels))
        return self._from_bits_rec(bits & full, pairs, n)

    def _from_bits_rec(self, bits: int, pairs: list[tuple[int, int]], n: int) -> int:
        if n == 0:
            return TRUE if bits & 1 else FALSE
        level, bitpos = pairs[0]
        # Split the rows on this variable's bit; renumber by dropping the bit.
        lo_bits = 0
        hi_bits = 0
        low_mask = (1 << bitpos) - 1
        for row in range(1 << n):
            if not (bits >> row) & 1:
                continue
            sub = ((row >> (bitpos + 1)) << bitpos) | (row & low_mask)
            if (row >> bitpos) & 1:
                hi_bits |= 1 << sub
            else:
                lo_bits |= 1 << sub
        rest = [(lvl, p - 1 if p > bitpos else p) for lvl, p in pairs[1:]]
        lo = self._from_bits_rec(lo_bits, rest, n - 1)
        hi = self._from_bits_rec(hi_bits, rest, n - 1)
        return self._mk(level, lo, hi)

    def to_truth_bits(self, u: int, levels: Sequence[int]) -> int:
        """Bit-packed truth table of ``u`` over ``levels`` (LSB-first rows).

        One memoized bottom-up walk over the distinct nodes of ``u``; each
        node contributes four big-integer operations on the packed table, so
        the cost is O(size(u)) word operations instead of the 2^n dict-driven
        evaluations of the naive per-row loop.
        """
        n = len(levels)
        support = self.support(u)
        missing = support - set(levels)
        if missing:
            raise ValueError(f"levels {sorted(missing)} in support but not in scope")
        if n == 0:
            return 1 if u == TRUE else 0
        full = (1 << (1 << n)) - 1
        bitpos = {lvl: j for j, lvl in enumerate(levels)}
        node_levels = self._level
        lows = self._low
        highs = self._high
        memo: dict[int, int] = {}

        def rec(e: int) -> int:
            i = e >> 1
            if i == 0:
                base = 0
            else:
                base = memo.get(i)
                if base is None:
                    lo = rec(lows[i])
                    hi = rec(highs[i])
                    mask = row_mask(n, bitpos[node_levels[i]])
                    base = (lo & (full ^ mask)) | (hi & mask)
                    memo[i] = base
            return (full ^ base) if e & 1 else base

        return rec(u)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def build_expr(
        self,
        op: str,
        *operands: int,
    ) -> int:
        """Apply a named operator (``and/or/xor/xnor/not/implies``) to operands."""
        ops: dict[str, Callable[..., int]] = {
            "and": self.conjoin,
            "or": self.disjoin,
        }
        if op in ops:
            return ops[op](operands)
        if op == "not":
            (f,) = operands
            return self.apply_not(f)
        binary = {
            "xor": self.apply_xor,
            "xnor": self.apply_xnor,
            "implies": self.apply_implies,
        }
        if op in binary:
            f, g = operands
            return binary[op](f, g)
        raise ValueError(f"unknown operator {op!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BDD vars={self.num_vars} nodes={self.num_nodes}>"
