"""Model counting for BDDs.

The paper reports the *number of preferable decomposition functions* (Table 1)
as the satisfying-assignment count of the characteristic function chi_k(z)
over the p positional-set variables.  Counts grow like 2^p (up to ~1.8e19 in
the paper), so everything here uses exact Python integers.
"""

from __future__ import annotations

from typing import Iterable

from repro.bdd.manager import BDD, FALSE, TRUE


def satcount(bdd: BDD, u: int, scope: Iterable[int]) -> int:
    """Exact number of satisfying total assignments of ``u`` over ``scope``.

    ``scope`` is an iterable of variable levels and must contain the support
    of ``u``; scope variables outside the support double the count each.
    """
    levels = sorted(set(scope))
    support = bdd.support(u)
    missing = support - set(levels)
    if missing:
        raise ValueError(f"support levels {sorted(missing)} missing from scope")
    index = {lvl: i for i, lvl in enumerate(levels)}
    n = len(levels)
    cache: dict[int, int] = {}

    def pos(v: int) -> int:
        """Scope position of node v's level (n for terminals)."""
        return n if bdd.is_terminal(v) else index[bdd.level(v)]

    def count(v: int) -> int:
        """Models of v over the scope variables at positions pos(v)..n-1."""
        if v == TRUE:
            return 1
        if v == FALSE:
            return 0
        hit = cache.get(v)
        if hit is not None:
            return hit
        i = index[bdd.level(v)]
        lo, hi = bdd.low(v), bdd.high(v)
        # Levels skipped between this node and its child are free choices.
        result = (count(lo) << (pos(lo) - i - 1)) + (count(hi) << (pos(hi) - i - 1))
        cache[v] = result
        return result

    return count(u) << pos(u)


def density(bdd: BDD, u: int, scope: Iterable[int]) -> float:
    """Fraction of the 2^|scope| assignments that satisfy ``u``."""
    levels = sorted(set(scope))
    total = satcount(bdd, u, levels)
    return total / (1 << len(levels))
