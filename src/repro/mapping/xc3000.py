"""Packing LUT networks into Xilinx XC3000 CLBs.

The XC3000 Configurable Logic Block has five logic inputs and two outputs.
Its function generator implements either one function of up to five inputs
or two functions of up to four inputs each, as long as the two functions
together use at most five distinct input signals.

Packing is therefore a matching problem: build the compatibility graph over
the <=4-input LUTs (edge = combined support <= 5) and take a maximum
matching; every matched pair shares one CLB, everything else gets its own.
networkx's max-cardinality matching keeps this exact rather than greedy.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.network.network import Network


@dataclass
class PackingResult:
    """CLB assignment of a LUT network."""

    pairs: list[tuple[str, str]]
    singles: list[str]

    @property
    def num_clbs(self) -> int:
        return len(self.pairs) + len(self.singles)


def pack_xc3000(network: Network, k: int = 5, pair_fanin: int = 4) -> PackingResult:
    """Pack a k-feasible LUT network into XC3000 CLBs.

    ``k`` is the single-function input limit (5 on the XC3000); ``pair_fanin``
    the per-function limit when two functions share a CLB (4).  Constant
    nodes are free (tied-off inputs) and consume no CLB.
    """
    lut_names = []
    supports: dict[str, frozenset[str]] = {}
    for name, node in network.nodes.items():
        if not node.fanins:
            continue  # constants are tied off, no CLB needed
        if len(node.fanins) > k:
            raise ValueError(f"node {name!r} exceeds {k} inputs")
        lut_names.append(name)
        supports[name] = frozenset(node.fanins)

    graph = nx.Graph()
    pairable = [n for n in lut_names if len(supports[n]) <= pair_fanin]
    graph.add_nodes_from(pairable)
    for i, a in enumerate(pairable):
        for b in pairable[i + 1 :]:
            if len(supports[a] | supports[b]) <= k:
                graph.add_edge(a, b)

    matching = nx.max_weight_matching(graph, maxcardinality=True)
    pairs = sorted(tuple(sorted(edge)) for edge in matching)
    paired = {n for edge in pairs for n in edge}
    singles = sorted(n for n in lut_names if n not in paired)
    return PackingResult(pairs=pairs, singles=singles)
