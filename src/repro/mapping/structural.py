"""Partial-collapse ("r+") LUT mapping of pre-structured networks.

The starred circuits of Table 2 cannot be collapsed globally; the paper
pre-structures them with ``script.rugged`` and maps the resulting structure.
This module implements the corresponding flow as a *cut-based partial
collapse*:

1. Walk the network in topological order, building each signal's function as
   a BDD over the current *frontier* (primary inputs plus promoted boundary
   signals).
2. When a function's support exceeds ``max_cluster_inputs``, promote fanin
   signals (widest first) to boundary status -- each gets a fresh BDD
   variable -- until the function fits.  Promoted signals become mapping
   targets of their own.
3. Map the resulting super-node functions (boundaries + primary outputs) to
   LUTs with the same recursive decomposition engine as the collapsed flow;
   in ``multi`` mode, independent functions emitted together are grouped by
   the paper's output-partitioning heuristic so preferable decomposition
   functions can be shared across them.

For networks that fit entirely under the support cap this degenerates to a
full collapse, which matches the paper's Table 2 where the unstarred "r+"
rows equal the collapsed-flow results.
"""

from __future__ import annotations

from repro import observe
from repro.bdd.backend import make_manager
from repro.bdd.manager import BDD, FALSE, TRUE
from repro.engine import Engine
from repro.mapping.flow import FlowConfig, FlowResult
from repro.mapping.lut import check_k_feasible
from repro.network.network import Network
from repro.observe.stats import BddStats
from repro.partitioning.outputs import partition_outputs


def _build_rep(bdd: BDD, cover, fanin_reps: list[int]) -> int:
    """Function of a node over the current frontier, from its SOP cover."""
    acc = FALSE
    for cube in cover.cubes:
        term = TRUE
        for j, polarity in cube.literals().items():
            fn = fanin_reps[j]
            term = bdd.apply_and(term, fn if polarity else bdd.apply_not(fn))
            if term == FALSE:
                break
        acc = bdd.apply_or(acc, term)
    return acc


def partial_collapse(
    network: Network,
    max_support: int = 16,
    backend: str = "object",
) -> tuple[BDD, dict[int, str], list[tuple[str, int]], dict[str, int]]:
    """Collapse a network up to a support cap.

    Returns ``(bdd, frontier, items, rep)`` where ``frontier`` maps BDD
    levels to the network signals they stand for, ``items`` lists the
    functions to synthesize (boundary signals first, in promotion order,
    then any remaining logic feeding the outputs), and ``rep`` maps every
    network signal to its function over the frontier.
    """
    bdd = make_manager(backend)
    rep: dict[str, int] = {}
    frontier: dict[int, str] = {}
    items: list[tuple[str, int]] = []
    promoted: set[str] = set()

    for name in network.inputs:
        lit = bdd.add_var(name)
        rep[name] = lit
        frontier[bdd.level(lit)] = name

    def promote(signal: str) -> None:
        """Emit ``signal`` as a mapping target and replace it by a variable."""
        items.append((signal, rep[signal]))
        lit = bdd.add_var(f"@{signal}")
        frontier[bdd.level(lit)] = signal
        rep[signal] = lit
        promoted.add(signal)

    for name in network.topological_order():
        node = network.nodes[name]
        fanin_reps = [rep[f] for f in node.fanins]
        r = _build_rep(bdd, node.cover, fanin_reps)
        if len(bdd.support(r)) > max_support:
            # Promote the widest internal fanins until the function fits.
            candidates = sorted(
                {f for f in node.fanins if f in network.nodes and f not in promoted},
                key=lambda f: (-len(bdd.support(rep[f])), f),
            )
            for f in candidates:
                if len(bdd.support(rep[f])) <= 1:
                    break  # literal-sized reps cannot reduce the support
                promote(f)
                fanin_reps = [rep[g] for g in node.fanins]
                r = _build_rep(bdd, node.cover, fanin_reps)
                if len(bdd.support(r)) <= max_support:
                    break
        rep[name] = r

    for name in network.outputs:
        if name not in promoted and name not in network.inputs:
            items.append((name, rep[name]))
    return bdd, frontier, items, rep


def _independent_batches(
    bdd: BDD, items: list[tuple[str, int]], frontier: dict[int, str]
) -> list[list[tuple[str, int]]]:
    """Split the emission list into runs with no internal dependencies.

    Item B depends on item A when A was promoted and A's frontier variable
    occurs in B's support; dependent items must be mapped in separate
    batches (A's LUT signal has to exist before B reads it).
    """
    level_of_item: dict[str, int] = {}
    for lvl, sig in frontier.items():
        level_of_item[sig] = lvl
    batches: list[list[tuple[str, int]]] = []
    current: list[tuple[str, int]] = []
    current_levels: set[int] = set()
    for sig, node in items:
        support = bdd.support(node)
        if support & current_levels:
            batches.append(current)
            current = []
            current_levels = set()
        current.append((sig, node))
        if sig in level_of_item:
            current_levels.add(level_of_item[sig])
    if current:
        batches.append(current)
    return batches


def synthesize_structural(
    network: Network,
    config: FlowConfig | None = None,
    max_cluster_inputs: int = 10,
) -> FlowResult:
    """Map a multi-level network to LUTs via partial collapse."""
    config = config or FlowConfig()
    with observe.span("partial_collapse"):
        bdd, frontier, items, rep = partial_collapse(
            network, max_cluster_inputs, backend=config.bdd_backend
        )
        observe.watch(bdd)
        observe.add("clusters", len(items))

    lut = Network("mapped")
    signal_of_level: dict[int, str] = {}
    for name in network.inputs:
        lut.add_input(name)
    engine = Engine(bdd, config, lut, signal_of_level)
    # Frontier levels resolve to mapped signals as they are emitted; PIs now.
    emitted: dict[str, str] = {name: name for name in network.inputs}
    for lvl, sig in frontier.items():
        if sig in emitted:
            signal_of_level[lvl] = emitted[sig]

    with observe.span("map"):
        # Each batch is a barrier: its boundary signals must exist before
        # the next batch reads them.  Within a batch, the grouped clusters
        # are independent engine task groups (the process executor maps
        # them concurrently).
        for batch in _independent_batches(bdd, items, frontier):
            observe.add("batches")
            nodes = [node for _, node in batch]
            names = [sig for sig, _ in batch]
            if config.mode == "multi" and len(batch) > 1:
                levels = sorted(set().union(*(bdd.support(n) for n in nodes)) or {0})
                groups = partition_outputs(
                    bdd,
                    nodes,
                    levels,
                    min(config.bound_size or config.k, config.k),
                    max_group=config.max_group,
                    max_globals=config.max_globals,
                    jobs=config.jobs,
                )
            else:
                groups = [[i] for i in range(len(batch))]
            group_signals = engine.run_groups(
                [[nodes[i] for i in group] for group in groups]
            )
            for group, signals in zip(groups, group_signals):
                for i, sig in zip(group, signals):
                    emitted[names[i]] = sig
            # boundary variables of this batch now resolve to their LUT signals
            for lvl, sig in frontier.items():
                if sig in emitted and lvl not in signal_of_level:
                    signal_of_level[lvl] = emitted[sig]

    output_signals = {name: emitted[name] for name in network.outputs}
    lut.set_outputs(sorted(set(output_signals.values())))
    check_k_feasible(lut, config.k)
    return FlowResult(
        network=lut,
        output_signals=output_signals,
        config=config,
        records=engine.context.records,
        bdd_stats=BddStats.from_manager(bdd),
        engine_stats=engine.stats(),
    )
