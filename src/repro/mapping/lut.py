"""LUT-network helpers.

A LUT network is an ordinary :class:`~repro.network.network.Network` whose
nodes all have at most ``k`` fanins; each node is one lookup table.  The
helpers here validate that property and count LUTs (wires aliased straight
to inputs cost nothing).
"""

from __future__ import annotations

from repro.network.network import Network


def check_k_feasible(network: Network, k: int) -> None:
    """Raise ValueError unless every node has at most ``k`` fanins.

    The error names the offending node and lists its fanin signals, so a
    violation deep inside a mapped network is diagnosable without dumping
    the whole netlist.
    """
    for node in network.nodes.values():
        if len(node.fanins) > k:
            fanins = ", ".join(node.fanins)
            raise ValueError(
                f"node {node.name!r} has {len(node.fanins)} fanins "
                f"(k = {k}): {fanins}"
            )


def lut_count(network: Network) -> int:
    """Number of LUTs = number of logic nodes."""
    return len(network.nodes)


def level_count(network: Network) -> int:
    """LUT depth of the network."""
    from repro.network.stats import network_stats

    return network_stats(network).depth
