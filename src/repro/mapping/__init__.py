"""LUT technology mapping and XC3000 CLB packing.

- :mod:`~repro.mapping.flow` -- the recursive decomposition-based LUT
  synthesis flow, in the paper's two modes: ``multi`` (IMODEC) and ``single``
  (classical per-output decomposition, the Table 2 baseline).
- :mod:`~repro.mapping.xc3000` -- packing k-feasible LUT networks into
  Xilinx XC3000 CLBs (one 5-input function, or two functions of <= 4 inputs
  sharing at most 5 distinct inputs).
- :mod:`~repro.mapping.lut` -- LUT-network helpers and validity checks.
"""

from repro.mapping.flow import FlowConfig, FlowResult, synthesize
from repro.mapping.lut import check_k_feasible, lut_count
from repro.mapping.structural import synthesize_structural
from repro.mapping.xc3000 import pack_xc3000
from repro.mapping.xc4000 import pack_xc4000

__all__ = [
    "FlowConfig",
    "FlowResult",
    "check_k_feasible",
    "lut_count",
    "pack_xc3000",
    "pack_xc4000",
    "synthesize",
    "synthesize_structural",
]
