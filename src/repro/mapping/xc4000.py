"""Packing 4-feasible LUT networks into Xilinx XC4000 CLBs.

The XC4000 CLB contains two independent 4-input function generators (F and
G -- separate input pins, so no shared-input restriction as on the XC3000)
plus a third 3-input generator H that can combine F, G and one extra input.
A CLB therefore implements either

- two arbitrary functions of <= 4 inputs each, or
- one function of up to 9 inputs of the form ``H(F(..), G(..), h1)``.

Packing proceeds in two steps: greedily absorb *H-triples* -- a 3-input
node whose fanins include two single-fanout internal LUTs -- into single
CLBs, then pair the remaining LUTs two per CLB (no compatibility constraint
needed).  The result is a valid, conservative CLB count for k = 4 mappings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.network import Network


@dataclass
class Xc4000Packing:
    """CLB assignment of a 4-feasible LUT network."""

    triples: list[tuple[str, str, str]] = field(default_factory=list)  # (h, f, g)
    pairs: list[tuple[str, str]] = field(default_factory=list)
    singles: list[str] = field(default_factory=list)

    @property
    def num_clbs(self) -> int:
        return len(self.triples) + len(self.pairs) + len(self.singles)


def pack_xc4000(network: Network, k: int = 4) -> Xc4000Packing:
    """Pack a ``k``-feasible LUT network (k <= 4) into XC4000 CLBs."""
    if k > 4:
        raise ValueError("the XC4000 function generators have 4 inputs")
    lut_names = []
    for name, node in network.nodes.items():
        if not node.fanins:
            continue  # constants are tied off
        if len(node.fanins) > 4:
            raise ValueError(f"node {name!r} exceeds 4 inputs")
        lut_names.append(name)

    fanouts = network.fanouts()
    packing = Xc4000Packing()
    used: set[str] = set()

    # Step 1: H-triples.  h has <= 3 fanins, two of which are internal LUTs
    # whose only fanout is h and which are not primary outputs themselves.
    for h in lut_names:
        if h in used:
            continue
        node = network.nodes[h]
        if len(node.fanins) > 3:
            continue
        candidates = [
            f
            for f in dict.fromkeys(node.fanins)
            if f in network.nodes
            and f not in used
            and f != h
            and network.nodes[f].fanins
            and fanouts.get(f, []) == [h]
            and f not in network.outputs
        ]
        if len(candidates) >= 2:
            f, g = candidates[0], candidates[1]
            packing.triples.append((h, f, g))
            used.update({h, f, g})

    # Step 2: free pairing of the remaining LUTs.
    rest = [n for n in lut_names if n not in used]
    for i in range(0, len(rest) - 1, 2):
        packing.pairs.append((rest[i], rest[i + 1]))
    if len(rest) % 2:
        packing.singles.append(rest[-1])
    return packing
