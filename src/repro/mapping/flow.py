"""The decomposition-based LUT synthesis flow.

This is the program around IMODEC (Section 7): collapse the network, group
the outputs into vectors, pick bound sets, decompose recursively until every
produced function fits a ``k``-input LUT, and emit the LUT netlist.

Two modes reproduce the two columns of Table 2:

- ``multi``  -- multiple-output decomposition: outputs are grouped by the
  paper's greedy heuristic and each vector is decomposed by the implicit
  algorithm, sharing preferable decomposition functions across outputs.
- ``single`` -- classical single-output decomposition of every output in
  isolation (common subfunctions are *not* recognized), the baseline the
  paper reports a 38 % average CLB reduction against.

Functions that do not shrink under functional decomposition fall back to a
Shannon split (a 3-input mux LUT plus the two cofactors), which guarantees
termination for arbitrary functions.

The decomposition work itself runs on the task-graph engine
(:mod:`repro.engine`): every step is an explicit task drained by the
executor named in ``FlowConfig.executor`` -- ``serial`` replays the
historical recursion order bit-identically, ``process`` fans independent
output groups out to worker processes, ``remote`` fans them out across
hosts through a broker (``FlowConfig.broker``; see
``docs/DISTRIBUTED.md``).  The heuristics live behind
``FlowConfig.policy`` (see :mod:`repro.engine.policies`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro import observe
from repro.bdd.backend import BACKEND_NAMES, DEFAULT_BACKEND
from repro.bdd.manager import FALSE, TRUE
from repro.engine import EXECUTORS, Engine, EngineStats
from repro.engine.faults import FaultPlan
from repro.engine.policies import POLICIES, parse_policy_spec
from repro.imodec.lmax import TieBreak
from repro.mapping.lut import check_k_feasible
from repro.network.collapse import collapse
from repro.network.network import Network
from repro.observe.stats import BddStats
from repro.partitioning.outputs import partition_outputs
from repro.partitioning.variables import Strategy
from repro.targets import AUTO_TARGET, resolve_target


@dataclass(frozen=True)
class FlowConfig:
    """Knobs of the synthesis flow."""

    k: int | None = None  # LUT input width (None: from target; default 5)
    target: str = AUTO_TARGET  # technology target (repro.targets registry)
    mode: Literal["multi", "single"] = "multi"
    bound_size: int | None = None  # default: k (capped by support size)
    tie_break: TieBreak = "balanced"
    var_strategy: Strategy = "auto"
    use_output_partitioning: bool = True
    output_grouping: Literal["greedy", "fast"] = "greedy"
    dc_fill: Literal["zero", "nearest"] = "zero"  # unused-code filling in g
    strict: bool = False  # one-code-per-class baseline (refs [10, 11])
    max_group: int | None = None  # the paper's "limit m" valve
    max_globals: int | None = 64  # Property-1 abort threshold
    jobs: int = 1  # process-pool width (engine workers, bound-set scoring)
    executor: Literal["serial", "process", "remote"] = "serial"
    policy: str = "ladder-peel"  # decomposition heuristic (engine.policies)
    ladder_cap: int = 12  # hard ceiling of the bound-size ladder
    peel_rounds: int = 3  # lone-output peel rounds per vector
    bdd_backend: Literal["object", "arena"] = DEFAULT_BACKEND
    auto_reorder: bool = False  # growth-triggered sifting between groups
    reorder_factor: float = 4.0  # trigger: nodes >= factor * post-build size

    # -- reliability (process executor; see docs/RELIABILITY.md) --------
    task_timeout: float | None = None  # per-group wall-clock ceiling (s)
    task_retries: int = 2  # retries per group after the first failure
    retry_backoff: float = 0.05  # base of the exponential retry backoff (s)
    degrade_to_serial: bool = True  # failing groups fall back in-parent
    fault_plan: FaultPlan | None = None  # deterministic fault injection
    checkpoint_path: str | None = None  # write completed groups here
    checkpoint_every: int = 1  # flush period, in merged groups
    resume_from: str | None = None  # replay a checkpoint file

    # -- persistent result cache (see docs/CACHING.md) ------------------
    cache_db: str | None = None  # sqlite store of canonical group results

    # -- distributed execution (see docs/DISTRIBUTED.md) ----------------
    broker: str | None = None  # HOST:PORT of the remote-executor broker

    def __post_init__(self) -> None:
        if self.k is not None and self.k < 3:
            raise ValueError("k < 3 cannot host the Shannon fallback mux")
        # Normalize the resolver pseudo-target to a concrete name and pin
        # k to the target's cell width, so the semantic config digest
        # (checkpoints, result cache) never sees "auto"/None; an explicit
        # k must agree with a concrete target.
        name, k = resolve_target(self.target, self.k)
        object.__setattr__(self, "target", name)
        object.__setattr__(self, "k", k)
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r} (have: {sorted(EXECUTORS)})"
            )
        candidates = parse_policy_spec(self.policy)
        for candidate in candidates:
            if candidate not in POLICIES:
                raise ValueError(
                    f"unknown policy {candidate!r} (have: {sorted(POLICIES)})"
                )
        if len(candidates) > 1:
            if self.auto_reorder:
                raise ValueError(
                    "a race: policy needs auto_reorder off (candidates run "
                    "through the worker path, which has no group-boundary "
                    "reorder hook)"
                )
            if self.fault_plan is not None:
                raise ValueError(
                    "a race: policy cannot be combined with fault injection "
                    "(fault plans are keyed by group ordinal; racing "
                    "multiplies the submissions per group)"
                )
        if self.ladder_cap < self.k:
            raise ValueError("ladder_cap below k leaves no ladder at all")
        if self.peel_rounds < 0:
            raise ValueError("peel_rounds must be >= 0")
        if self.bdd_backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown bdd backend {self.bdd_backend!r} "
                f"(have: {list(BACKEND_NAMES)})"
            )
        if self.reorder_factor <= 1.0:
            raise ValueError("reorder_factor must be > 1.0")
        if self.auto_reorder and self.executor != "serial":
            raise ValueError(
                "auto_reorder needs the serial executor (workers map groups "
                "on private managers with no shared growth to watch)"
            )
        if self.executor == "remote" and self.broker is None:
            raise ValueError(
                "executor 'remote' needs a broker address "
                "(FlowConfig.broker / --broker HOST:PORT)"
            )
        if self.broker is not None and self.executor != "remote":
            raise ValueError(
                "broker is only meaningful with executor='remote'"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if self.task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.cache_db is not None and self.auto_reorder:
            raise ValueError(
                "cache_db cannot be combined with auto_reorder (the cached "
                "drain replays groups through the worker path, which has no "
                "group-boundary reorder hook)"
            )


@dataclass
class GroupRecord:
    """Statistics of one multiple-output decomposition step."""

    outputs: int  # m
    num_globals: int  # p
    num_functions: int  # q
    num_functions_unshared: int  # sum c_k


@dataclass
class FlowResult:
    """A mapped LUT network plus bookkeeping."""

    network: Network
    output_signals: dict[str, str]
    config: FlowConfig
    records: list[GroupRecord] = field(default_factory=list)
    bdd_stats: BddStats = field(default_factory=BddStats)
    engine_stats: EngineStats = field(default_factory=EngineStats)
    race_winners: dict[str, int] = field(default_factory=dict)

    @property
    def num_luts(self) -> int:
        return len(self.network.nodes)

    @property
    def max_group_outputs(self) -> int:
        """Largest decomposed vector (the m column of Table 2)."""
        return max((r.outputs for r in self.records), default=0)

    @property
    def max_globals(self) -> int:
        """Largest number of global classes (the p column of Table 2)."""
        return max((r.num_globals for r in self.records), default=0)


@dataclass
class PreparedRun:
    """A network collapsed, grouped and ready for the engine.

    The batch layer (:mod:`repro.engine.batch`) uses this split to enqueue
    the groups of many networks on one shared queue before collecting any
    of them; :func:`synthesize` is prepare + run + finish for one network.
    """

    network: Network
    config: FlowConfig
    engine: Engine
    out_names: list[str]
    groups: list[list[int]]  # output indices per engine group
    group_nodes: list[list[int]]  # BDD roots per engine group

    def finish(self, group_signals: list[list[str]]) -> FlowResult:
        """Bind output signals and package the :class:`FlowResult`."""
        output_signals: dict[str, str] = {}
        for group, signals in zip(self.groups, group_signals):
            for i, sig in zip(group, signals):
                output_signals[self.out_names[i]] = sig
        lut = self.engine.context.lut
        lut.set_outputs(sorted(set(output_signals.values())))
        check_k_feasible(lut, self.config.k)
        return FlowResult(
            network=lut,
            output_signals=output_signals,
            config=self.config,
            records=self.engine.context.records,
            bdd_stats=BddStats.from_manager(self.engine.context.bdd),
            engine_stats=self.engine.stats(),
            race_winners=dict(self.engine.race_winners),
        )


def prepare_synthesis(network: Network, config: FlowConfig) -> PreparedRun:
    """Collapse a network and partition its outputs into engine groups."""
    with observe.span("collapse"):
        collapsed = collapse(network, backend=config.bdd_backend)
        observe.watch(collapsed.bdd)
    bdd = collapsed.bdd

    lut = Network("mapped")
    signal_of_level: dict[int, str] = {}
    for name, level in collapsed.input_levels.items():
        lut.add_input(name)
        signal_of_level[level] = name
    engine = Engine(bdd, config, lut, signal_of_level)

    out_names = list(network.outputs)
    out_nodes = [collapsed.output_nodes[name] for name in out_names]

    if config.mode == "multi" and config.use_output_partitioning:
        nontrivial = [
            i for i, f in enumerate(out_nodes) if len(bdd.support(f)) > config.k
        ]
        if config.output_grouping == "fast":
            from repro.partitioning.outputs import partition_outputs_fast

            with observe.span("partition_outputs"):
                groups_idx = partition_outputs_fast(
                    bdd,
                    [out_nodes[i] for i in nontrivial],
                    max_group=config.max_group,
                )
        else:
            groups_idx = partition_outputs(
                bdd,
                [out_nodes[i] for i in nontrivial],
                sorted(collapsed.input_levels.values()),
                min(config.bound_size or config.k, config.k),
                max_group=config.max_group,
                max_globals=config.max_globals,
                jobs=config.jobs,
            )
        groups = [[nontrivial[i] for i in g] for g in groups_idx]
        grouped = {i for g in groups for i in g}
        groups.extend([[i] for i in range(len(out_nodes)) if i not in grouped])
    else:
        groups = [[i] for i in range(len(out_nodes))]

    return PreparedRun(
        network=network,
        config=config,
        engine=engine,
        out_names=out_names,
        groups=groups,
        group_nodes=[[out_nodes[i] for i in group] for group in groups],
    )


def synthesize(network: Network, config: FlowConfig | None = None) -> FlowResult:
    """Run the full flow on a combinational network."""
    config = config or FlowConfig()
    prep = prepare_synthesis(network, config)
    with observe.span("map"):
        observe.add("groups", len(prep.groups))
        group_signals = prep.engine.run_groups(prep.group_nodes)
        return prep.finish(group_signals)


def verify_flow(original: Network, result: FlowResult) -> bool:
    """Exact equivalence check of the mapped network against the original.

    Both networks are collapsed over the same primary-input manager and the
    output BDD nodes are compared -- canonicity makes this a proof, not a
    simulation.
    """
    reference = collapse(original)
    bdd = reference.bdd
    values: dict[str, int] = {
        name: bdd.var(level) for name, level in reference.input_levels.items()
    }
    lut_net = result.network
    for name in lut_net.topological_order():
        node = lut_net.nodes[name]
        acc = FALSE
        for cube in node.cover.cubes:
            term = TRUE
            for j, polarity in cube.literals().items():
                fn = values[node.fanins[j]]
                term = bdd.apply_and(term, fn if polarity else bdd.apply_not(fn))
            acc = bdd.apply_or(acc, term)
        values[name] = acc
    for out_name, signal in result.output_signals.items():
        if values[signal] != reference.output_nodes[out_name]:
            return False
    return True


def verify_flow_sim(
    original: Network, result: FlowResult, num_random: int = 256, seed: int = 0
) -> bool:
    """Simulation-based equivalence check for networks too large to collapse.

    Exhaustive for small input counts, seeded random vectors otherwise (the
    starred Table 2 circuits use this path).
    """
    from repro.network.simulate import input_vectors

    for vector in input_vectors(original.inputs, num_random, seed):
        expected = original.evaluate_outputs(vector)
        got = result.network.evaluate(vector)
        for out_name, signal in result.output_signals.items():
            if got[signal] != expected[out_name]:
                return False
    return True
