"""The decomposition-based LUT synthesis flow.

This is the program around IMODEC (Section 7): collapse the network, group
the outputs into vectors, pick bound sets, decompose recursively until every
produced function fits a ``k``-input LUT, and emit the LUT netlist.

Two modes reproduce the two columns of Table 2:

- ``multi``  -- multiple-output decomposition: outputs are grouped by the
  paper's greedy heuristic and each vector is decomposed by the implicit
  algorithm, sharing preferable decomposition functions across outputs.
- ``single`` -- classical single-output decomposition of every output in
  isolation (common subfunctions are *not* recognized), the baseline the
  paper reports a 38 % average CLB reduction against.

Functions that do not shrink under functional decomposition fall back to a
Shannon split (a 3-input mux LUT plus the two cofactors), which guarantees
termination for arbitrary functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro import observe
from repro.bdd.manager import BDD, FALSE, TRUE
from repro.boolfunc.sop import Sop
from repro.boolfunc.truthtable import TruthTable
from repro.errors import DecompositionError
from repro.imodec.decomposer import decompose_multi
from repro.imodec.lmax import TieBreak
from repro.mapping.lut import check_k_feasible
from repro.network.collapse import CollapsedNetwork, collapse
from repro.network.network import Network
from repro.partitioning.outputs import partition_outputs
from repro.partitioning.variables import Strategy, choose_bound_set


@dataclass
class FlowConfig:
    """Knobs of the synthesis flow."""

    k: int = 5
    mode: Literal["multi", "single"] = "multi"
    bound_size: int | None = None  # default: k (capped by support size)
    tie_break: TieBreak = "balanced"
    var_strategy: Strategy = "auto"
    use_output_partitioning: bool = True
    output_grouping: Literal["greedy", "fast"] = "greedy"
    dc_fill: Literal["zero", "nearest"] = "zero"  # unused-code filling in g
    strict: bool = False  # one-code-per-class baseline (refs [10, 11])
    max_group: int | None = None  # the paper's "limit m" valve
    max_globals: int | None = 64  # Property-1 abort threshold
    jobs: int = 1  # process-pool width for bound-set scoring

    def __post_init__(self) -> None:
        if self.k < 3:
            raise ValueError("k < 3 cannot host the Shannon fallback mux")


@dataclass
class GroupRecord:
    """Statistics of one multiple-output decomposition step."""

    outputs: int  # m
    num_globals: int  # p
    num_functions: int  # q
    num_functions_unshared: int  # sum c_k


@dataclass
class FlowResult:
    """A mapped LUT network plus bookkeeping."""

    network: Network
    output_signals: dict[str, str]
    config: FlowConfig
    records: list[GroupRecord] = field(default_factory=list)
    bdd_stats: dict = field(default_factory=dict)  # manager cache/node counters

    @property
    def num_luts(self) -> int:
        return len(self.network.nodes)

    @property
    def max_group_outputs(self) -> int:
        """Largest decomposed vector (the m column of Table 2)."""
        return max((r.outputs for r in self.records), default=0)

    @property
    def max_globals(self) -> int:
        """Largest number of global classes (the p column of Table 2)."""
        return max((r.num_globals for r in self.records), default=0)


class _FlowState:
    """Mutable state threaded through one synthesis run.

    ``signal_of_level`` maps BDD levels to signal names in the target LUT
    network; the collapsed flow seeds it with the primary inputs, the
    structural flow with whatever signals feed the cluster being mapped.
    """

    def __init__(
        self,
        bdd: BDD,
        config: FlowConfig,
        lut: Network,
        signal_of_level: dict[int, str],
        records: list[GroupRecord] | None = None,
        constants: dict[bool, str] | None = None,
    ) -> None:
        self.bdd = bdd
        self.config = config
        self.lut = lut
        self.signal_of_level = signal_of_level
        self.records: list[GroupRecord] = records if records is not None else []
        self.constants: dict[bool, str] = constants if constants is not None else {}

    @classmethod
    def from_collapsed(cls, collapsed: CollapsedNetwork, config: FlowConfig) -> "_FlowState":
        lut = Network("mapped")
        signal_of_level: dict[int, str] = {}
        for name, level in collapsed.input_levels.items():
            lut.add_input(name)
            signal_of_level[level] = name
        return cls(collapsed.bdd, config, lut, signal_of_level)

    # ------------------------------------------------------------------

    def constant_signal(self, value: bool) -> str:
        sig = self.constants.get(value)
        if sig is None:
            sig = self.lut.fresh_name("const")
            self.lut.add_constant(sig, value)
            self.constants[value] = sig
        return sig

    def emit_lut(self, f: int, cache: dict[int, str]) -> str:
        """Emit a function with support <= k as one LUT node (or an alias)."""
        bdd = self.bdd
        if f == TRUE:
            return self.constant_signal(True)
        if f == FALSE:
            return self.constant_signal(False)
        cached = cache.get(f)
        if cached is not None:
            return cached
        support = sorted(bdd.support(f))
        if len(support) == 1 and f == bdd.var(support[0]):
            sig = self.signal_of_level[support[0]]
            cache[f] = sig
            return sig
        fanins = [self.signal_of_level[lvl] for lvl in support]
        bits = bdd.to_truth_bits(f, support)
        table = TruthTable(len(support), bits)
        name = self.lut.fresh_name("L")
        self.lut.add_node(name, fanins, Sop.from_truthtable(table))
        cache[f] = name
        observe.add("luts_emitted")
        return name

    # ------------------------------------------------------------------

    def emit_vector(self, f_nodes: list[int], cache: dict[int, str]) -> list[str]:
        """Map a vector of functions to signals, recursively."""
        observe.checkpoint()  # budget enforcement point per recursion step
        config = self.config
        bdd = self.bdd
        signals: list[str | None] = [None] * len(f_nodes)
        pending: list[int] = []
        for i, f in enumerate(f_nodes):
            if len(bdd.support(f)) <= config.k:
                signals[i] = self.emit_lut(f, cache)
            else:
                pending.append(i)
        if not pending:
            return signals  # type: ignore[return-value]

        if config.mode == "single" and len(pending) > 1:
            for i in pending:
                (signals[i],) = self.emit_vector([f_nodes[i]], cache)
            return signals  # type: ignore[return-value]

        vector = [f_nodes[i] for i in pending]

        def attempt_with(vec: list[int], bound: int, scorer: str):
            union = sorted(set().union(*(bdd.support(f) for f in vec)))
            bound = min(bound, len(union) - 1)
            bs_, fs_ = choose_bound_set(
                bdd, vec, union, bound,
                strategy=config.var_strategy, scorer=scorer, jobs=config.jobs,
            )
            res = decompose_multi(
                bdd, vec, bs_, fs_,
                tie_break=config.tie_break,
                dc_fill=config.dc_fill,
                strict=config.strict,
            )
            prog = [
                j
                for j, f in enumerate(vec)
                if res.codewidths[j] < len(bdd.support(f) & set(bs_))
            ]
            return res, bs_, prog

        def attempt(vec: list[int], bound: int):
            """Decompose ``vec`` with a bound set of ``bound``, trying both
            bound-set scorers (compact and shared) and keeping the better
            outcome: progress first, then fewer pool functions, then fewer
            total composition inputs."""
            best = None
            best_key = None
            scorers = ("compact",) if len(vec) == 1 else ("compact", "shared")
            for scorer in scorers:
                res, bs_, prog = attempt_with(vec, bound, scorer)
                g_inputs = sum(
                    res.codewidths[j] + len(bdd.support(f) - set(bs_))
                    for j, f in enumerate(vec)
                )
                key = (0 if prog else 1, res.num_functions, g_inputs)
                if best_key is None or key < best_key:
                    best, best_key = (res, bs_, prog), key
            if best is None:
                raise DecompositionError(
                    f"no scorer produced a decomposition for a {len(vec)}-output "
                    f"vector with bound size {bound}"
                )
            return best

        # Bound-size ladder: start at the configured size (default k) and
        # widen when no output makes progress -- the paper uses bound sets up
        # to b = 8 with k = 5 (Table 1, alu4), decomposing the d-functions
        # recursively.
        base_bound = min(config.bound_size or config.k, config.k)
        max_bound = max(base_bound, config.bound_size or 0, config.k + 3)
        result, bs, progressing = attempt(vector, base_bound)
        bound = base_bound
        while not progressing and bound < min(max_bound, 12):
            bound += 2
            result, bs, progressing = attempt(vector, bound)

        # Outputs none of whose decomposition functions are shared gain
        # nothing from the joint bound set (which may be worse than their own
        # choice): peel them off and re-emit them individually, then
        # re-decompose the rest.  A few rounds suffice.
        for _ in range(3):
            if len(vector) <= 1:
                break
            lone = [
                j
                for j in range(len(vector))
                if all(
                    len(result.d_pool[i].users) <= 1 for i in result.assignments[j]
                )
            ]
            if not lone:
                break
            for j in lone:
                (signals[pending[j]],) = self.emit_vector(
                    [f_nodes[pending[j]]], cache
                )
            keep = [j for j in range(len(vector)) if j not in set(lone)]
            if not keep:
                return signals  # type: ignore[return-value]
            pending = [pending[j] for j in keep]
            vector = [vector[j] for j in keep]
            result, bs, progressing = attempt(vector, bound)
        self.records.append(
            GroupRecord(
                outputs=len(vector),
                num_globals=result.num_global_classes,
                num_functions=result.num_functions,
                num_functions_unshared=result.num_functions_unshared,
            )
        )
        observe.add("groups_decomposed")
        observe.add(
            "functions_shared_away",
            result.num_functions_unshared - result.num_functions,
        )
        observe.gauge("max_group_outputs", len(vector))
        observe.gauge("max_global_classes", result.num_global_classes)

        stuck = [j for j in range(len(pending)) if j not in progressing]

        if progressing:
            # Emit the shared decomposition functions used by progressing
            # outputs (recursively if the bound set exceeds k), then bind
            # each code level to its signal.
            used_pool = sorted(
                {
                    idx
                    for j in progressing
                    for idx in result.assignments[j]
                }
            )
            for idx in used_pool:
                d_node = result.d_pool[idx].node
                if len(bdd.support(d_node)) <= config.k:
                    d_sig = self.emit_lut(d_node, cache)
                else:
                    (d_sig,) = self.emit_vector([d_node], cache)
                for j in progressing:
                    for bit, assigned in enumerate(result.assignments[j]):
                        if assigned == idx:
                            self.signal_of_level[result.code_levels[j][bit]] = d_sig
            g_vector = [result.g_nodes[j] for j in progressing]
            g_signals = self.emit_vector(g_vector, cache)
            for j, sig in zip(progressing, g_signals):
                signals[pending[j]] = sig

        for j in stuck:
            signals[pending[j]] = self.shannon_emit(f_nodes[pending[j]], cache)
        return signals  # type: ignore[return-value]

    def shannon_emit(self, f: int, cache: dict[int, str]) -> str:
        """Fallback: f = x ? f1 : f0 with a 3-input mux LUT."""
        bdd = self.bdd
        support = sorted(bdd.support(f))
        # split on the variable minimizing the larger cofactor support
        def split_cost(lvl: int) -> tuple[int, int]:
            lo = bdd.cofactor(f, lvl, False)
            hi = bdd.cofactor(f, lvl, True)
            a, b2 = len(bdd.support(lo)), len(bdd.support(hi))
            return (max(a, b2), a + b2)

        lvl = min(support, key=split_cost)
        lo = bdd.cofactor(f, lvl, False)
        hi = bdd.cofactor(f, lvl, True)
        lo_sig, hi_sig = self.emit_vector([lo, hi], cache)
        sel_sig = self.signal_of_level[lvl]
        observe.add("shannon_splits")
        name = self.lut.fresh_name("M")
        # mux(s, lo, hi): fanins [sel, lo, hi]
        self.lut.add_node(
            name,
            [sel_sig, lo_sig, hi_sig],
            Sop.from_strings(3, ["01-", "1-1"]),  # ~s&lo | s&hi
        )
        return name


def synthesize(network: Network, config: FlowConfig | None = None) -> FlowResult:
    """Run the full flow on a combinational network."""
    config = config or FlowConfig()
    with observe.span("collapse"):
        collapsed = collapse(network)
        observe.watch(collapsed.bdd)
    state = _FlowState.from_collapsed(collapsed, config)
    bdd = collapsed.bdd

    out_names = list(network.outputs)
    out_nodes = [collapsed.output_nodes[name] for name in out_names]

    if config.mode == "multi" and config.use_output_partitioning:
        nontrivial = [
            i for i, f in enumerate(out_nodes) if len(bdd.support(f)) > config.k
        ]
        if config.output_grouping == "fast":
            from repro.partitioning.outputs import partition_outputs_fast

            with observe.span("partition_outputs"):
                groups_idx = partition_outputs_fast(
                    bdd,
                    [out_nodes[i] for i in nontrivial],
                    max_group=config.max_group,
                )
        else:
            groups_idx = partition_outputs(
                bdd,
                [out_nodes[i] for i in nontrivial],
                sorted(collapsed.input_levels.values()),
                min(config.bound_size or config.k, config.k),
                max_group=config.max_group,
                max_globals=config.max_globals,
                jobs=config.jobs,
            )
        groups = [[nontrivial[i] for i in g] for g in groups_idx]
        grouped = {i for g in groups for i in g}
        groups.extend([[i] for i in range(len(out_nodes)) if i not in grouped])
    else:
        groups = [[i] for i in range(len(out_nodes))]

    output_signals: dict[str, str] = {}
    with observe.span("map"):
        observe.add("groups", len(groups))
        for group in groups:
            cache: dict[int, str] = {}
            signals = state.emit_vector([out_nodes[i] for i in group], cache)
            for i, sig in zip(group, signals):
                output_signals[out_names[i]] = sig

        state.lut.set_outputs(sorted(set(output_signals.values())))
        check_k_feasible(state.lut, config.k)
    return FlowResult(
        network=state.lut,
        output_signals=output_signals,
        config=config,
        records=state.records,
        bdd_stats=bdd.cache_stats(),
    )


def verify_flow(original: Network, result: FlowResult) -> bool:
    """Exact equivalence check of the mapped network against the original.

    Both networks are collapsed over the same primary-input manager and the
    output BDD nodes are compared -- canonicity makes this a proof, not a
    simulation.
    """
    reference = collapse(original)
    bdd = reference.bdd
    values: dict[str, int] = {
        name: bdd.var(level) for name, level in reference.input_levels.items()
    }
    lut_net = result.network
    for name in lut_net.topological_order():
        node = lut_net.nodes[name]
        acc = FALSE
        for cube in node.cover.cubes:
            term = TRUE
            for j, polarity in cube.literals().items():
                fn = values[node.fanins[j]]
                term = bdd.apply_and(term, fn if polarity else bdd.apply_not(fn))
            acc = bdd.apply_or(acc, term)
        values[name] = acc
    for out_name, signal in result.output_signals.items():
        if values[signal] != reference.output_nodes[out_name]:
            return False
    return True


def verify_flow_sim(
    original: Network, result: FlowResult, num_random: int = 256, seed: int = 0
) -> bool:
    """Simulation-based equivalence check for networks too large to collapse.

    Exhaustive for small input counts, seeded random vectors otherwise (the
    starred Table 2 circuits use this path).
    """
    from repro.network.simulate import input_vectors

    for vector in input_vectors(original.inputs, num_random, seed):
        expected = original.evaluate_outputs(vector)
        got = result.network.evaluate(vector)
        for out_name, signal in result.output_signals.items():
            if got[signal] != expected[out_name]:
                return False
    return True
