"""``python -m repro.observe REPORT.json ...`` validates run reports."""

from repro.observe.report import main

if __name__ == "__main__":
    raise SystemExit(main())
