"""Typed BDD-manager statistics shared by flow results and run reports.

Historically :class:`repro.mapping.flow.FlowResult` carried a bare ``dict``
of manager counters and every consumer (benchmark JSON emitters, run
reports, tests) re-spelled the key set by hand.  :class:`BddStats` is the
one schema: construct it from a manager with :meth:`BddStats.from_manager`,
serialize it with :meth:`BddStats.as_dict`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class BddStats:
    """Counters of one BDD manager's unified operation cache + node table.

    Attributes:
        nodes: total nodes ever allocated (including the terminal).
        entries: live memoized entries in the operation cache.
        hits / misses / evictions: lifetime cache counters.
        hit_rate: ``hits / (hits + misses)``, 0.0 before any lookup.
    """

    nodes: int = 0
    entries: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    hit_rate: float = 0.0

    @classmethod
    def from_manager(cls, bdd) -> "BddStats":
        """Snapshot a :class:`repro.bdd.manager.BDD` manager's counters."""
        return cls(**bdd.cache_stats())

    def as_dict(self) -> dict:
        """Plain-JSON form (the historical ``FlowResult.bdd_stats`` dict)."""
        return asdict(self)
