"""Typed BDD-manager statistics shared by flow results and run reports.

Historically :class:`repro.mapping.flow.FlowResult` carried a bare ``dict``
of manager counters and every consumer (benchmark JSON emitters, run
reports, tests) re-spelled the key set by hand.  :class:`BddStats` is the
one schema: construct it from a manager with :meth:`BddStats.from_manager`,
serialize it with :meth:`BddStats.as_dict`.

Backends report through the same core counter set (``cache_stats()``), so
the schema is backend-independent; the arena backend additionally exposes
its store geometry and kernel-dispatch counters (``arena_stats()``), which
ride along in the ``arena`` field when present.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BddStats:
    """Counters of one BDD manager's operation cache + node table.

    Attributes:
        nodes: total nodes ever allocated (including the terminal).
        entries: live memoized entries in the operation cache.
        hits / misses / evictions: lifetime cache counters (``evictions``
            counts dict-cache drops on the object backend and fixed-slot
            overwrites on the arena backend).
        hit_rate: ``hits / (hits + misses)``, 0.0 before any lookup.
        backend: registry name of the manager implementation.
        arena: arena-backend internals (growths, rehashes, table load,
            scalar/vector kernel dispatch), empty for the object backend.
    """

    nodes: int = 0
    entries: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    hit_rate: float = 0.0
    backend: str = "object"
    arena: dict = field(default_factory=dict)

    @classmethod
    def from_manager(cls, bdd) -> "BddStats":
        """Snapshot any backend's counters (object or arena manager)."""
        arena_stats = getattr(bdd, "arena_stats", None)
        return cls(
            backend=getattr(bdd, "backend_name", "object"),
            arena=arena_stats() if arena_stats is not None else {},
            **bdd.cache_stats(),
        )

    def as_dict(self) -> dict:
        """Plain-JSON form (the historical ``FlowResult.bdd_stats`` dict).

        The ``arena`` key appears only when the backend recorded arena
        internals, so object-backend payloads keep their historical shape
        plus the ``backend`` discriminator.
        """
        payload = {
            "nodes": self.nodes,
            "entries": self.entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "backend": self.backend,
        }
        if self.arena:
            payload["arena"] = dict(self.arena)
        return payload
