"""Hierarchical run tracer: spans, counters, BDD deltas, soft budgets.

The tracer models a synthesis run as a tree of *spans* (context-manager
scopes).  Spans with the same name under the same parent aggregate -- one
node accumulating total wall-clock and a call count -- so per-group or
per-iteration instrumentation stays bounded no matter how large the run.

Each span carries arbitrary numeric counters (:meth:`Tracer.add` /
:meth:`Tracer.gauge`) plus automatic deltas of every *watched* BDD manager:
nodes allocated and operation-cache hits / misses / evictions between span
entry and exit (see :meth:`Tracer.watch` and
:meth:`repro.bdd.manager.BDD.cache_stats`).

Soft budgets bound a span's wall-clock or watched-node growth.  They are
enforced at explicit :meth:`Tracer.checkpoint` calls (the flow places them
at iteration boundaries) and when a child span opens -- never retroactively
at span exit, where the work is already spent.  A violated budget raises
:class:`repro.errors.BudgetExceeded`, a structured exception callers can
catch to degrade gracefully.

The module is designed for zero-cost disabled operation: library code calls
the module-level helpers in :mod:`repro.observe`, which dispatch to the
tracer installed in a :class:`contextvars.ContextVar` or fall through to
no-ops.  Process-pool workers (``jobs > 1``) never see the parent's tracer;
the parent's spans around the pool calls still time them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import BudgetExceeded
from repro.observe.stats import BddStats


@dataclass(frozen=True)
class Budget:
    """Soft resource thresholds of one span name.

    Attributes:
        seconds: wall-clock bound of a single span activation.
        nodes: bound on watched-manager node growth within one activation.
    """

    seconds: float | None = None
    nodes: int | None = None


@dataclass
class Span:
    """One node of the span tree (aggregated by name under its parent)."""

    name: str
    seconds: float = 0.0
    calls: int = 0
    counters: dict[str, int | float] = field(default_factory=dict)
    children: dict[str, "Span"] = field(default_factory=dict)

    # Live bookkeeping of the current activation (meaningless when closed).
    _t0: float = 0.0
    _stats0: tuple[int, int, int, int] = (0, 0, 0, 0)

    def add(self, name: str, value: int | float = 1) -> None:
        """Accumulate a counter on this span."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: int | float) -> None:
        """Record a high-water-mark counter (keeps the maximum seen)."""
        current = self.counters.get(name)
        if current is None or value > current:
            self.counters[name] = value

    def child(self, name: str) -> "Span":
        node = self.children.get(name)
        if node is None:
            node = Span(name)
            self.children[name] = node
        return node


class _SpanContext:
    """Reusable context manager binding one span activation to a tracer."""

    __slots__ = ("_tracer", "_name")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> Span:
        return self._tracer._enter(self._name)

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._exit()


class Tracer:
    """Collects the span tree and enforces budgets for one run.

    Example::

        tracer = Tracer(budgets={"synthesize": Budget(seconds=60)})
        with tracing(tracer):
            with tracer.span("synthesize"):
                ...
        report = build_report(tracer)
    """

    def __init__(self, budgets: dict[str, Budget] | None = None) -> None:
        self.root = Span("run")
        self.budgets: dict[str, Budget] = dict(budgets or {})
        self.failures: list[dict[str, int | float | str]] = []
        self._stack: list[Span] = [self.root]
        self._watched: list = []  # BDD managers

    # ------------------------------------------------------------------
    # BDD watching
    # ------------------------------------------------------------------

    def watch(self, bdd) -> None:
        """Include a BDD manager in node/cache delta accounting.

        Call this right after creating the manager: its whole history is
        attributed to the spans open at watch time (exact for a fresh
        manager, which is how the flow uses it -- the collapsed manager is
        born inside the ``collapse`` span).
        """
        if not any(m is bdd for m in self._watched):
            self._watched.append(bdd)

    def _watched_stats(self) -> tuple[int, int, int, int]:
        nodes = hits = misses = evictions = 0
        for bdd in self._watched:
            stats = BddStats.from_manager(bdd)
            nodes += stats.nodes
            hits += stats.hits
            misses += stats.misses
            evictions += stats.evictions
        return (nodes, hits, misses, evictions)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------

    def span(self, name: str) -> _SpanContext:
        """Context manager opening (or re-entering) the named child span."""
        return _SpanContext(self, name)

    @property
    def current(self) -> Span:
        """The innermost open span (the root outside any span)."""
        return self._stack[-1]

    def _enter(self, name: str) -> Span:
        self.checkpoint()  # opening a child is an enforcement point
        span = self._stack[-1].child(name)
        span.calls += 1
        span._t0 = time.perf_counter()
        span._stats0 = self._watched_stats()
        self._stack.append(span)
        return span

    def _exit(self) -> None:
        span = self._stack.pop()
        span.seconds += time.perf_counter() - span._t0
        delta = self._watched_stats()
        s0 = span._stats0
        for key, value in zip(
            ("bdd_nodes", "cache_hits", "cache_misses", "cache_evictions"),
            (delta[0] - s0[0], delta[1] - s0[1], delta[2] - s0[2], delta[3] - s0[3]),
        ):
            if value:
                span.add(key, value)

    # ------------------------------------------------------------------
    # counters and budgets
    # ------------------------------------------------------------------

    def add(self, name: str, value: int | float = 1) -> None:
        """Accumulate a counter on the innermost open span."""
        self._stack[-1].add(name, value)

    def gauge(self, name: str, value: int | float) -> None:
        """Record a maximum on the innermost open span."""
        self._stack[-1].gauge(name, value)

    def failure(self, **fields: int | float | str) -> None:
        """Record one structured task-failure event.

        Used by the fault-tolerant process executor for every failed
        attempt (timeout, worker crash, injected fault, ...).  Events
        accumulate on the tracer -- not on a span -- and surface as the
        run report's top-level ``failures`` array
        (``repro-run-report/5``); a ``task_failures`` counter is bumped
        on the innermost open span so aggregate views stay cheap.
        """
        self.failures.append(dict(fields))
        self._stack[-1].add("task_failures")

    def checkpoint(self) -> None:
        """Enforce the budgets of every open span.

        Called by the flow at iteration boundaries (and automatically when a
        child span opens).  Raises :class:`BudgetExceeded` on the first
        violated budget, outermost span first.
        """
        if not self.budgets:
            return
        now: float | None = None
        stats: tuple[int, int, int, int] | None = None
        for span in self._stack[1:]:
            budget = self.budgets.get(span.name)
            if budget is None:
                continue
            if budget.seconds is not None:
                if now is None:
                    now = time.perf_counter()
                elapsed = now - span._t0
                if elapsed > budget.seconds:
                    raise BudgetExceeded(span.name, "seconds", budget.seconds, elapsed)
            if budget.nodes is not None:
                if stats is None:
                    stats = self._watched_stats()
                grown = stats[0] - span._stats0[0]
                if grown > budget.nodes:
                    raise BudgetExceeded(span.name, "nodes", budget.nodes, grown)
