"""Machine-readable run reports and their schema.

A run report is the JSON serialization of a :class:`repro.observe.Tracer`
span tree plus run metadata.  The format is versioned
(``repro-run-report/5``) and validated by :func:`validate_report` -- a
dependency-free structural checker the CI smoke runs against every emitted
report (``python -m repro.observe out.json``).  Version 1 (no ``engine``
section), version 2 (no ``failures`` array), version 3 (no ``target``
section) and version 4 (no nested ``engine.remote`` object) reports are
still accepted by the validator.

Schema (all times in seconds, all counters numeric)::

    {
      "schema": "repro-run-report/5",
      "total_seconds": <float>,          # sum of top-level span times
      "meta": {<str>: <scalar>, ...},    # free-form run metadata
      "engine": {<str>: <scalar>, ...},  # optional: task-graph engine stats
      "target": {"name": <str>, ...},    # optional: technology-target stats
      "failures": [<failure>, ...],      # optional: task-failure events
      "spans": [<span>, ...]             # top-level spans in open order
    }
    <span> = {
      "name": <str>,
      "seconds": <float>,
      "calls": <int >= 1>,
      "counters": {<str>: <number>, ...},
      "children": [<span>, ...]
    }
    <failure> = {"kind": <str>, <str>: <scalar>, ...}

The ``engine`` section (new in version 2) is a flat object of scalars
describing the :mod:`repro.engine` run: the executor taken, worker count,
per-kind task counts, the queue-depth high-water mark, and -- new in
version 3 -- the reliability counters of the fault-tolerant executor
(retries, timeouts, degradations, checkpoint activity; see
``docs/RELIABILITY.md``).  The ``failures`` array (new in version 3)
holds one structured record per failed task attempt, as collected by
:meth:`repro.observe.Tracer.failure`; each record carries at least a
``kind`` string (``timeout`` / ``worker-crash`` / ``fault`` / ...).
The ``target`` section (new in version 4, see ``docs/TARGETS.md``)
describes the technology target the run mapped for: a required
non-empty ``name``, scalar entries (``k``, cost totals, per-target
cache counters), and an optional ``race_winners`` object counting how
many raced groups each policy of a ``race:`` portfolio won.  Version 5
(see ``docs/DISTRIBUTED.md``) allows one nested object inside
``engine``: a ``remote`` entry of scalars (broker address, tasks
submitted/completed, lease expiries, shared-cache hits, broker errors)
that remote-executor runs attach; every other ``engine`` entry remains
a flat scalar.

:func:`format_tree` renders the same tree for humans (the CLI's
``--trace``).
"""

from __future__ import annotations

import json
from typing import Any

from repro.observe.tracer import Span, Tracer

SCHEMA_ID = "repro-run-report/5"
#: Previous schema versions, still accepted by :func:`validate_report`.
SCHEMA_ID_V4 = "repro-run-report/4"
SCHEMA_ID_V3 = "repro-run-report/3"
SCHEMA_ID_V2 = "repro-run-report/2"
SCHEMA_ID_V1 = "repro-run-report/1"


class ReportSchemaError(ValueError):
    """A payload does not conform to the run-report schema."""


def _span_payload(span: Span) -> dict[str, Any]:
    return {
        "name": span.name,
        "seconds": span.seconds,
        "calls": span.calls,
        "counters": dict(span.counters),
        "children": [_span_payload(c) for c in span.children.values()],
    }


def build_report(
    tracer: Tracer,
    meta: dict[str, Any] | None = None,
    engine: dict[str, Any] | None = None,
    target: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Serialize a tracer's span tree as a schema-conforming report.

    ``engine`` is the optional flat scalar object describing a task-graph
    engine run (``repro.engine``); pass e.g.
    ``FlowResult.engine_stats.as_dict()``.  ``target`` is the optional
    technology-target section (pass
    :func:`repro.targets.report_section`).  Task-failure events recorded
    on the tracer surface as the top-level ``failures`` array.
    """
    spans = [_span_payload(c) for c in tracer.root.children.values()]
    payload = {
        "schema": SCHEMA_ID,
        "total_seconds": sum(s["seconds"] for s in spans),
        "meta": dict(meta or {}),
        "spans": spans,
    }
    if engine is not None:
        payload["engine"] = dict(engine)
    if target is not None:
        payload["target"] = dict(target)
    if tracer.failures:
        payload["failures"] = [dict(f) for f in tracer.failures]
    return payload


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------

_SCALAR = (str, int, float, bool, type(None))


def _fail(path: str, message: str) -> None:
    raise ReportSchemaError(f"{path}: {message}")


def _validate_span(span: Any, path: str) -> None:
    if not isinstance(span, dict):
        _fail(path, "span must be an object")
    required = {"name", "seconds", "calls", "counters", "children"}
    missing = required - span.keys()
    if missing:
        _fail(path, f"missing keys {sorted(missing)}")
    extra = span.keys() - required
    if extra:
        _fail(path, f"unknown keys {sorted(extra)}")
    if not isinstance(span["name"], str) or not span["name"]:
        _fail(path, "name must be a non-empty string")
    if not isinstance(span["seconds"], (int, float)) or isinstance(span["seconds"], bool):
        _fail(path, "seconds must be a number")
    if span["seconds"] < 0:
        _fail(path, "seconds must be non-negative")
    if not isinstance(span["calls"], int) or isinstance(span["calls"], bool) or span["calls"] < 1:
        _fail(path, "calls must be a positive integer")
    if not isinstance(span["counters"], dict):
        _fail(path, "counters must be an object")
    for key, value in span["counters"].items():
        if not isinstance(key, str):
            _fail(path, "counter names must be strings")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            _fail(path, f"counter {key!r} must be a number")
    if not isinstance(span["children"], list):
        _fail(path, "children must be an array")
    names = [c.get("name") if isinstance(c, dict) else None for c in span["children"]]
    if len(names) != len(set(names)):
        _fail(path, "sibling spans must have distinct names")
    for child in span["children"]:
        name = child.get("name", "?") if isinstance(child, dict) else "?"
        _validate_span(child, f"{path}/{name}")


def validate_report(payload: Any) -> dict[str, Any]:
    """Check a parsed report against the schema; return it on success.

    Raises :class:`ReportSchemaError` naming the offending path otherwise.
    """
    if not isinstance(payload, dict):
        _fail("$", "report must be an object")
    schema = payload.get("schema")
    known = (SCHEMA_ID, SCHEMA_ID_V4, SCHEMA_ID_V3, SCHEMA_ID_V2, SCHEMA_ID_V1)
    if schema not in known:
        _fail(
            "$.schema",
            f"expected one of {list(known)}, got {schema!r}",
        )
    required = {"schema", "total_seconds", "meta", "spans"}
    missing = required - payload.keys()
    if missing:
        _fail("$", f"missing keys {sorted(missing)}")
    if "engine" in payload:
        if schema == SCHEMA_ID_V1:
            _fail(
                "$.engine",
                "engine section requires schema repro-run-report/2 or newer",
            )
        if not isinstance(payload["engine"], dict):
            _fail("$.engine", "must be an object")
        for key, value in payload["engine"].items():
            if not isinstance(key, str):
                _fail("$.engine", "entry names must be strings")
            if key == "remote":
                if schema != SCHEMA_ID:
                    _fail(
                        "$.engine",
                        "nested remote object requires schema "
                        "repro-run-report/5",
                    )
                if not isinstance(value, dict):
                    _fail("$.engine", "remote must be an object")
                for rkey, rvalue in value.items():
                    if not isinstance(rkey, str) or not isinstance(
                        rvalue, _SCALAR
                    ):
                        _fail(
                            "$.engine",
                            f"remote entry {rkey!r} must map a string "
                            "to a scalar",
                        )
                continue
            if not isinstance(value, _SCALAR):
                _fail("$.engine", f"entry {key!r} must map a string to a scalar")
    if "target" in payload:
        if schema not in (SCHEMA_ID, SCHEMA_ID_V4):
            _fail(
                "$.target",
                "target section requires schema repro-run-report/4 or newer",
            )
        section = payload["target"]
        if not isinstance(section, dict):
            _fail("$.target", "must be an object")
        if not isinstance(section.get("name"), str) or not section["name"]:
            _fail("$.target", "needs a non-empty 'name' string")
        for key, value in section.items():
            if not isinstance(key, str):
                _fail("$.target", "entry names must be strings")
            if key == "race_winners":
                if not isinstance(value, dict):
                    _fail("$.target", "race_winners must be an object")
                for policy, wins in value.items():
                    if (
                        not isinstance(policy, str)
                        or not isinstance(wins, int)
                        or isinstance(wins, bool)
                        or wins < 0
                    ):
                        _fail(
                            "$.target",
                            f"race_winners entry {policy!r} must map a "
                            "string to a non-negative integer",
                        )
                continue
            if not isinstance(value, _SCALAR):
                _fail("$.target", f"entry {key!r} must map a string to a scalar")
    if "failures" in payload:
        if schema in (SCHEMA_ID_V1, SCHEMA_ID_V2):
            _fail(
                "$.failures",
                "failures array requires schema repro-run-report/3 or newer",
            )
        if not isinstance(payload["failures"], list):
            _fail("$.failures", "must be an array")
        for i, event in enumerate(payload["failures"]):
            path = f"$.failures/{i}"
            if not isinstance(event, dict):
                _fail(path, "failure event must be an object")
            if not isinstance(event.get("kind"), str) or not event["kind"]:
                _fail(path, "failure event needs a non-empty 'kind' string")
            for key, value in event.items():
                if not isinstance(key, str) or not isinstance(value, _SCALAR):
                    _fail(path, f"entry {key!r} must map a string to a scalar")
    total = payload["total_seconds"]
    if not isinstance(total, (int, float)) or isinstance(total, bool) or total < 0:
        _fail("$.total_seconds", "must be a non-negative number")
    if not isinstance(payload["meta"], dict):
        _fail("$.meta", "must be an object")
    for key, value in payload["meta"].items():
        if not isinstance(key, str) or not isinstance(value, _SCALAR):
            _fail("$.meta", f"entry {key!r} must map a string to a scalar")
    if not isinstance(payload["spans"], list):
        _fail("$.spans", "must be an array")
    for span in payload["spans"]:
        name = span.get("name", "?") if isinstance(span, dict) else "?"
        _validate_span(span, f"$.spans/{name}")
    return payload


# ----------------------------------------------------------------------
# human-readable rendering
# ----------------------------------------------------------------------

def _format_value(value: int | float) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def _format_span(span: dict[str, Any], depth: int, lines: list[str]) -> None:
    indent = "  " * depth
    calls = f" x{span['calls']}" if span["calls"] > 1 else ""
    counters = "".join(
        f" {key}={_format_value(value)}" for key, value in sorted(span["counters"].items())
    )
    lines.append(f"{indent}{span['name']}: {span['seconds']:.3f}s{calls}{counters}")
    for child in span["children"]:
        _format_span(child, depth + 1, lines)


def format_tree(source: Tracer | dict[str, Any]) -> str:
    """Render a tracer or report payload as an indented span tree."""
    payload = build_report(source) if isinstance(source, Tracer) else source
    lines = [f"total: {payload['total_seconds']:.3f}s"]
    for span in payload["spans"]:
        _format_span(span, 1, lines)
    return "\n".join(lines)


def flatten_phases(payload: dict[str, Any]) -> dict[str, float]:
    """Per-phase seconds keyed by slash-joined span path (for BENCH rows)."""
    flat: dict[str, float] = {}

    def walk(span: dict[str, Any], prefix: str) -> None:
        path = f"{prefix}/{span['name']}" if prefix else span["name"]
        flat[path] = round(span["seconds"], 6)
        for child in span["children"]:
            walk(child, path)

    for span in payload["spans"]:
        walk(span, "")
    return flat


def main(argv: list[str] | None = None) -> int:
    """Validate report files given on the command line (CI smoke)."""
    import sys

    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        print("usage: python -m repro.observe REPORT.json ...", file=sys.stderr)
        return 2
    for path in paths:
        try:
            with open(path, encoding="utf-8") as fh:
                validate_report(json.load(fh))
        except (OSError, json.JSONDecodeError, ReportSchemaError) as exc:
            print(f"{path}: INVALID: {exc}", file=sys.stderr)
            return 1
        print(f"{path}: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    raise SystemExit(main())
