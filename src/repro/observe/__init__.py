"""Flow-wide observability: structured tracing, phase metrics, run reports.

Library code instruments itself through the module-level helpers here --
:func:`span`, :func:`add`, :func:`gauge`, :func:`watch`, :func:`checkpoint`
-- which are no-ops unless a :class:`Tracer` is installed for the current
context via :func:`tracing`:

    from repro import observe
    from repro.observe import Budget, Tracer, build_report

    tracer = Tracer(budgets={"synthesize": Budget(seconds=300)})
    with observe.tracing(tracer):
        with observe.span("synthesize"):
            result = synthesize(net, config)
    report = build_report(tracer, meta={"circuit": net.name})

The installed tracer is held in a :class:`contextvars.ContextVar`, so
nested or concurrent flows cannot observe each other.  Disabled calls cost
one context-variable read; enabling tracing never changes any algorithmic
decision (see ``tests/observe/test_tracer.py`` for the determinism check).

See ``docs/OBSERVABILITY.md`` for the span model, the report schema, and
budget semantics.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.errors import BudgetExceeded
from repro.observe.report import (
    ReportSchemaError,
    SCHEMA_ID,
    SCHEMA_ID_V1,
    SCHEMA_ID_V2,
    build_report,
    flatten_phases,
    format_tree,
    validate_report,
)
from repro.observe.stats import BddStats
from repro.observe.tracer import Budget, Span, Tracer

__all__ = [
    "BddStats",
    "Budget",
    "BudgetExceeded",
    "ReportSchemaError",
    "SCHEMA_ID",
    "SCHEMA_ID_V1",
    "SCHEMA_ID_V2",
    "Span",
    "Tracer",
    "add",
    "build_report",
    "checkpoint",
    "current",
    "enabled",
    "failure",
    "flatten_phases",
    "format_tree",
    "gauge",
    "span",
    "tracing",
    "validate_report",
    "watch",
]

_TRACER: ContextVar[Tracer | None] = ContextVar("repro_tracer", default=None)


class _NullSpan:
    """Reusable no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


def current() -> Tracer | None:
    """The tracer installed for this context, or None."""
    return _TRACER.get()


def enabled() -> bool:
    """True when a tracer is installed (guard for costly-to-compute metrics)."""
    return _TRACER.get() is not None


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the current tracer for the duration."""
    token = _TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _TRACER.reset(token)


def span(name: str):
    """Open the named span on the current tracer (no-op when disabled)."""
    tracer = _TRACER.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name)


def add(name: str, value: int | float = 1) -> None:
    """Accumulate a counter on the innermost open span (no-op when disabled)."""
    tracer = _TRACER.get()
    if tracer is not None:
        tracer.add(name, value)


def gauge(name: str, value: int | float) -> None:
    """Record a high-water mark on the innermost open span."""
    tracer = _TRACER.get()
    if tracer is not None:
        tracer.gauge(name, value)


def failure(**fields: int | float | str) -> None:
    """Record a structured task-failure event (no-op when disabled)."""
    tracer = _TRACER.get()
    if tracer is not None:
        tracer.failure(**fields)


def watch(bdd) -> None:
    """Register a BDD manager for node/cache delta accounting."""
    tracer = _TRACER.get()
    if tracer is not None:
        tracer.watch(bdd)


def checkpoint() -> None:
    """Enforce the budgets of every open span (no-op when disabled)."""
    tracer = _TRACER.get()
    if tracer is not None:
        tracer.checkpoint()
