"""Command-line synthesis driver.

Usage::

    python -m repro.cli synth design.pla --mode multi --k 5 -o mapped.blif
    python -m repro.cli synth design.blif --rugged --structural --stats
    python -m repro.cli synth design.pla --executor process --jobs 4
    python -m repro.cli synth design.pla --report run.json --trace
    python -m repro.cli batch a.pla b.pla c.blif --executor process --jobs 4
    python -m repro.cli info design.blif

``synth`` reads a PLA or BLIF file, optionally pre-structures it with the
rugged-style script, maps it to k-input LUTs with multiple-output (IMODEC)
or single-output decomposition, verifies the result, reports the
technology target's cell counts (XC3000 CLBs by default) and optionally
writes the mapped netlist as BLIF.

``--target`` picks the technology target (``xc3000-clb``, ``lut-<k>``,
or ``auto``; see ``docs/TARGETS.md``) and ``--policy`` the decomposition
heuristic -- including a per-group portfolio race
(``race:ladder-peel,peel-first,...``) where every candidate policy maps
each output group and the cheapest result under the target wins
deterministically.

``batch`` maps many circuits in one invocation through one shared work
queue: with ``--executor process`` the decomposition groups of *all*
circuits fan out to the worker pool together (see ``docs/ARCHITECTURE.md``).
Results are identical to per-circuit ``synth`` runs.

``--executor`` picks the engine executor: ``serial`` (default) replays the
historical recursion order bit-identically; ``process`` maps independent
output groups in ``--jobs`` worker processes, each on its own BDD manager;
``remote`` fans groups out across hosts through a task broker
(``--broker HOST:PORT``; see ``docs/DISTRIBUTED.md``).  The broker and its
workers are separate subcommands::

    python -m repro.cli broker --port 8378
    python -m repro.cli worker --broker 127.0.0.1:8378
    python -m repro.cli synth design.pla --executor remote --broker 127.0.0.1:8378

``--bdd-backend`` picks the BDD manager implementation: ``object``
(default, the reference dict-of-nodes manager) or ``arena`` (a flat numpy
node store with iterative integer kernels; requires numpy, exit code 2
when missing).  Both backends are canonical-form identical and emit
byte-identical BLIF; see ``docs/ENGINE.md``.  ``--auto-reorder`` arms
growth-triggered variable sifting between output groups (serial executor),
firing when the manager grows past ``--reorder-factor`` times its
post-build size.

Observability: ``--report FILE`` writes a machine-readable JSON run report
(per-phase wall-clock, BDD node and cache deltas, IMODEC iteration counts,
and the engine's task counters; see ``docs/OBSERVABILITY.md``), ``--trace``
prints the span tree to stderr, and ``--budget-seconds`` /
``--budget-nodes`` arm soft budgets that abort a runaway synthesis with
exit code 3 instead of running unbounded.

Reliability (process executor; see ``docs/RELIABILITY.md``):
``--task-timeout`` and ``--task-retries`` bound and retry failing groups,
``--inject-faults PLAN`` arms the deterministic fault harness,
``--checkpoint FILE`` persists completed groups and ``--resume FILE``
replays them for a byte-identical restart.  ``batch`` isolates circuit
failures: a crashing circuit is reported (exit code 1) while the others
still map.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys
import threading
import time
from pathlib import Path

from repro import observe
from repro.algebraic.rugged import rugged
from repro.bdd.backend import BACKEND_NAMES, DEFAULT_BACKEND, BackendUnavailable
from repro.engine import parse_fault_plan, synthesize_batch
from repro.engine.executors import request_cancel, reset_cancel, shutdown_pool
from repro.errors import (
    BudgetExceeded,
    CheckpointError,
    ReproError,
    RunInterrupted,
)
from repro.io import parse_network
from repro.io.blif import write_blif
from repro.mapping.flow import FlowConfig, synthesize, verify_flow, verify_flow_sim
from repro.mapping.structural import synthesize_structural
from repro.network.network import Network
from repro.network.stats import network_stats
from repro.observe import Budget, Tracer, build_report, format_tree
from repro.targets import AUTO_TARGET, TARGET_NAMES, make_target, report_section


def load_network(path: Path) -> Network:
    """Read a PLA or BLIF file, dispatching on suffix, then content.

    An explicit ``.pla`` / ``.blif`` suffix is authoritative; other
    suffixes fall back to sniffing the first token (see
    :func:`repro.io.parse_network`).  Unrecognizable content raises a
    one-line :class:`ValueError` (exit code 2 from :func:`main`).
    """
    fmt = {".pla": "pla", ".blif": "blif"}.get(path.suffix.lower())
    try:
        return parse_network(path.read_text(), name=path.stem, fmt=fmt)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc


@contextlib.contextmanager
def _signals_cancel_drain():
    """Route SIGINT/SIGTERM into a graceful engine drain while active.

    The first signal requests cancellation
    (:func:`repro.engine.executors.request_cancel`): the executors unwind
    with :class:`RunInterrupted` at their next safe boundary, flushing any
    configured checkpoint on the way out, and :func:`main` maps that to
    exit code 130.  A second signal force-quits via
    :class:`KeyboardInterrupt`.  Outside the main thread (server runner
    threads, embedders) signals cannot be installed; the context is then
    a no-op and the caller's own drain hooks apply.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    signals_seen = 0

    def handler(signum: int, frame) -> None:
        nonlocal signals_seen
        signals_seen += 1
        if signals_seen > 1:
            raise KeyboardInterrupt
        request_cancel()
        print(
            "repro: interrupt received; draining and checkpointing "
            "(repeat to force quit)",
            file=sys.stderr,
        )

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            pass
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
        reset_cancel()


def _failure_kind(exc: ReproError) -> str:
    """Classify an error-exit exception for the report's failures array."""
    if isinstance(exc, BudgetExceeded):
        return "budget"
    if isinstance(exc, RunInterrupted):
        return "interrupted"
    if isinstance(exc, CheckpointError):
        return "checkpoint"
    return "error"


def cmd_info(args: argparse.Namespace) -> int:
    net = load_network(Path(args.input))
    print(f"{net.name}: {network_stats(net)}")
    return 0


def _make_tracer(args: argparse.Namespace) -> Tracer | None:
    budgets: dict[str, Budget] = {}
    if args.budget_seconds is not None or args.budget_nodes is not None:
        budgets["synthesize"] = Budget(
            seconds=args.budget_seconds, nodes=args.budget_nodes
        )
    if args.report or args.trace or budgets:
        return Tracer(budgets=budgets)
    return None


def _make_config(args: argparse.Namespace) -> FlowConfig:
    fault_plan = (
        parse_fault_plan(args.inject_faults) if args.inject_faults else None
    )
    if fault_plan is not None and args.executor not in ("process", "remote"):
        raise ValueError("--inject-faults needs --executor process or remote")
    checkpoint = getattr(args, "checkpoint", None)
    resume = getattr(args, "resume", None)
    if (checkpoint or resume) and args.executor not in ("process", "remote"):
        raise ValueError(
            "--checkpoint/--resume need --executor process or remote "
            "(the serial executor has no group boundary to checkpoint at)"
        )
    if (checkpoint or resume) and getattr(args, "structural", False):
        raise ValueError("--checkpoint/--resume do not apply to --structural")
    return FlowConfig(
        k=args.k,
        target=args.target,
        mode=args.mode,
        policy=args.policy,
        strict=args.strict,
        jobs=args.jobs,
        executor=args.executor,
        broker=getattr(args, "broker", None),
        bdd_backend=args.bdd_backend,
        auto_reorder=args.auto_reorder,
        reorder_factor=args.reorder_factor,
        task_timeout=args.task_timeout,
        task_retries=args.task_retries,
        fault_plan=fault_plan,
        checkpoint_path=checkpoint,
        checkpoint_every=getattr(args, "checkpoint_every", 1),
        resume_from=resume,
        cache_db=getattr(args, "cache_db", None),
    )


def cmd_synth(args: argparse.Namespace) -> int:
    path = Path(args.input)
    net = load_network(path)
    reference = net.copy()
    print(f"input:  {net.name}: {network_stats(net)}")

    if args.rugged:
        start = time.perf_counter()
        rugged(net)
        print(f"rugged: {network_stats(net)}  ({time.perf_counter() - start:.1f}s)")

    config = _make_config(args)
    tracer = _make_tracer(args)

    def run() -> tuple:
        with observe.span("synthesize"):
            if args.structural:
                res = synthesize_structural(net, config)
            else:
                res = synthesize(net, config)
        with observe.span("verify"):
            if args.structural:
                good = verify_flow_sim(reference, res)
            else:
                good = verify_flow(reference, res)
        return res, good

    start = time.perf_counter()
    result = None
    ok = False
    error: ReproError | None = None
    try:
        with _signals_cancel_drain():
            if tracer is not None:
                with observe.tracing(tracer):
                    result, ok = run()
            else:
                result, ok = run()
    except ReproError as exc:
        # The report below must still be written: an error exit without
        # the requested --report file is a lost post-mortem.
        error = exc
    elapsed = time.perf_counter() - start

    target = make_target(config.target)
    cost = target.network_cost(result.network) if result is not None else None

    if tracer is not None:
        if error is not None:
            tracer.failure(kind=_failure_kind(error), error=str(error))
        if args.trace:
            print(format_tree(tracer), file=sys.stderr)
        if args.report:
            meta = {
                "circuit": net.name,
                "input": str(path),
                "k": config.k,
                "mode": args.mode,
                "structural": bool(args.structural),
                "rugged": bool(args.rugged),
                "jobs": args.jobs,
                "bdd_backend": config.bdd_backend,
                "verified": bool(ok) and error is None,
                "wall_clock_seconds": elapsed,
            }
            if result is not None:
                meta["luts"] = result.num_luts
            if error is not None:
                meta["error"] = str(error)
            engine_dict = (
                result.engine_stats.as_dict() if result is not None else None
            )
            report = build_report(
                tracer,
                meta=meta,
                engine=engine_dict,
                target=report_section(
                    config.target,
                    config.k,
                    engine=engine_dict,
                    race_winners=(
                        result.race_winners if result is not None else None
                    ),
                    cost=cost,
                ),
            )
            Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
            print(f"report: {args.report}")

    if error is not None:
        raise error

    if not ok:
        print("ERROR: mapped network is NOT equivalent to the input", file=sys.stderr)
        return 1

    print(f"mapped: {result.num_luts} LUT{'s' if result.num_luts != 1 else ''} "
          f"(k = {config.k}, mode = {args.mode}, executor = {args.executor}, "
          f"{elapsed:.1f}s, verified)")
    if cost is not None and cost.detail:
        print(f"packed: {cost.units} {cost.unit_name}s ({cost.detail})")
    if result.race_winners:
        winners = ", ".join(
            f"{policy} x{wins}"
            for policy, wins in sorted(result.race_winners.items())
        )
        print(f"race:   winners: {winners}")
    if args.stats and result.records:
        print(f"decomposition vectors: {len(result.records)}, "
              f"max m = {result.max_group_outputs}, max p = {result.max_globals}")

    if args.output:
        Path(args.output).write_text(write_blif(result.network))
        print(f"wrote {args.output}")
    return 0


def _merge_engine_stats(results) -> dict:
    """Sum engine task counters across a batch (flat, report-ready).

    Failed circuits (``ReproError`` entries under ``fail_fast=False``) have
    no stats and are skipped.  The remote executor's nested ``remote``
    object merges key-wise (strings copied, counters summed).
    """
    merged: dict[str, int | str | dict] = {}
    for res in results:
        if isinstance(res, ReproError):
            continue
        for key, value in res.engine_stats.as_dict().items():
            if isinstance(value, dict):
                nested = merged.setdefault(key, {})
                assert isinstance(nested, dict)
                for nkey, nvalue in value.items():
                    if isinstance(nvalue, str):
                        nested[nkey] = nvalue
                    else:
                        nested[nkey] = int(nested.get(nkey, 0)) + nvalue
            elif isinstance(value, str):
                merged[key] = value
            elif key in ("workers", "queue_depth_max"):
                merged[key] = max(int(merged.get(key, 0)), value)
            else:
                merged[key] = int(merged.get(key, 0)) + value
    return merged


def cmd_batch(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.inputs]
    networks = [load_network(p) for p in paths]
    references = [net.copy() for net in networks]
    config = _make_config(args)
    tracer = _make_tracer(args)

    def run() -> tuple:
        with observe.span("synthesize"):
            batch = synthesize_batch(networks, config, fail_fast=False)
        with observe.span("verify"):
            good = [
                not isinstance(res, ReproError) and verify_flow(ref, res)
                for ref, res in zip(references, batch)
            ]
        return batch, good

    start = time.perf_counter()
    results: list = []
    ok: list = []
    error: ReproError | None = None
    try:
        with _signals_cancel_drain():
            if tracer is not None:
                with observe.tracing(tracer):
                    results, ok = run()
            else:
                results, ok = run()
    except ReproError as exc:
        # Keep going: the requested --report must be written even on an
        # error exit (the exception re-raises after the reporting block).
        error = exc
    elapsed = time.perf_counter() - start

    failures = 0
    mapped = [r for r in results if not isinstance(r, ReproError)]
    for net, res, good in zip(networks, results, ok):
        if isinstance(res, ReproError):
            failures += 1
            print(f"{net.name}: FAILED: {res}")
            continue
        status = "verified" if good else "NOT EQUIVALENT"
        failures += 0 if good else 1
        print(f"{net.name}: {res.num_luts} LUTs ({status})")
        if args.output_dir:
            out_dir = Path(args.output_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{net.name}.blif").write_text(write_blif(res.network))
    if error is None:
        print(f"batch:  {len(networks)} circuits, "
              f"{sum(r.num_luts for r in mapped)} LUTs total "
              f"(executor = {args.executor}, jobs = {args.jobs}, "
              f"{elapsed:.1f}s)")

    if tracer is not None:
        if error is not None:
            tracer.failure(kind=_failure_kind(error), error=str(error))
        if args.trace:
            print(format_tree(tracer), file=sys.stderr)
        if args.report:
            meta = {
                "circuits": ",".join(net.name for net in networks),
                "k": config.k,
                "mode": args.mode,
                "jobs": args.jobs,
                "luts": sum(r.num_luts for r in mapped),
                "verified": failures == 0 and error is None,
                "wall_clock_seconds": elapsed,
            }
            if error is not None:
                meta["error"] = str(error)
            race_winners: dict[str, int] = {}
            for res in mapped:
                for policy, wins in res.race_winners.items():
                    race_winners[policy] = race_winners.get(policy, 0) + wins
            engine_dict = _merge_engine_stats(results) if results else None
            report = build_report(
                tracer,
                meta=meta,
                engine=engine_dict,
                target=report_section(
                    config.target,
                    config.k,
                    engine=engine_dict,
                    race_winners=race_winners or None,
                ),
            )
            Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
            print(f"report: {args.report}")

    if error is not None:
        raise error

    if failures:
        print(f"ERROR: {failures} circuit(s) failed or NOT equivalent",
              file=sys.stderr)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived HTTP synthesis daemon (see docs/SERVING.md)."""
    from repro.serve import ServerConfig, SynthesisServer

    server = SynthesisServer(
        ServerConfig(
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            runners=args.runners,
            backlog=args.backlog,
            state_dir=args.state_dir,
            cache_db=args.cache_db,
            task_retries=args.task_retries,
            fault_plan=args.inject_faults,
            broker=args.broker,
        )
    )
    return server.serve_forever()


def cmd_broker(args: argparse.Namespace) -> int:
    """Run the remote-executor task broker (see docs/DISTRIBUTED.md)."""
    from repro.engine.remote import BrokerConfig, TaskBroker

    broker = TaskBroker(
        BrokerConfig(host=args.host, port=args.port, cache_db=args.cache_db)
    )
    return broker.serve_forever()


def cmd_worker(args: argparse.Namespace) -> int:
    """Run one remote decomposition worker against a broker."""
    from repro.engine.remote import run_worker

    stop = threading.Event()
    if threading.current_thread() is threading.main_thread():
        def handler(signum: int, frame) -> None:
            stop.set()

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
    return run_worker(
        args.broker,
        name=args.name,
        stop=stop,
        poll_seconds=args.poll_seconds,
        idle_exit=args.idle_exit,
    )


def _add_flow_options(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--mode", choices=["multi", "single"], default="multi",
                     help="multi = IMODEC sharing, single = classical baseline")
    cmd.add_argument("--k", type=int, default=None,
                     help="LUT input count (default: from --target, else 5)")
    cmd.add_argument("--target", default=AUTO_TARGET, metavar="NAME",
                     help="technology target: "
                          f"{', '.join(TARGET_NAMES)}, lut-<k> for any "
                          "k >= 3, or auto (xc3000-clb at k = 5, lut-<k> "
                          "otherwise; see docs/TARGETS.md)")
    cmd.add_argument("--policy", default="ladder-peel", metavar="SPEC",
                     help="decomposition policy (ladder-peel, peel-first, "
                          "flat-ladder), or a per-group portfolio race "
                          "'race:p1,p2,...' -- every candidate maps each "
                          "group and the cheapest result under --target "
                          "wins deterministically")
    cmd.add_argument("--executor", choices=["serial", "process", "remote"],
                     default="serial",
                     help="engine executor: serial replays the recursion order, "
                          "process fans groups out to worker processes, remote "
                          "fans them out across hosts through a task broker "
                          "(--broker; see docs/DISTRIBUTED.md)")
    cmd.add_argument("--broker", metavar="HOST:PORT",
                     help="task-broker address for --executor remote "
                          "(start one with 'repro broker', attach workers "
                          "with 'repro worker')")
    cmd.add_argument("--jobs", type=int, default=1,
                     help="worker processes (engine workers, bound-set scoring)")
    cmd.add_argument("--bdd-backend", choices=list(BACKEND_NAMES),
                     default=DEFAULT_BACKEND,
                     help="BDD manager implementation: object (reference) or "
                          "arena (flat numpy node store with iterative "
                          "kernels; same BLIF bytes, faster on large managers)")
    cmd.add_argument("--auto-reorder", action="store_true",
                     help="growth-triggered variable sifting between output "
                          "groups (see --reorder-factor)")
    cmd.add_argument("--reorder-factor", type=float, default=4.0, metavar="F",
                     help="auto-reorder trigger: sift when live nodes exceed "
                          "F times the post-build size (default 4.0)")
    cmd.add_argument("--strict", action="store_true",
                     help="strict (one-code-per-class) decomposition baseline")
    cmd.add_argument("--report", metavar="FILE",
                     help="write a JSON run report (see docs/OBSERVABILITY.md)")
    cmd.add_argument("--trace", action="store_true",
                     help="print the traced span tree to stderr")
    cmd.add_argument("--budget-seconds", type=float, metavar="S",
                     help="soft wall-clock budget of the synthesis phase")
    cmd.add_argument("--budget-nodes", type=int, metavar="N",
                     help="soft budget on BDD nodes allocated during synthesis")
    cmd.add_argument("--task-timeout", type=float, metavar="S",
                     help="per-group wall-clock ceiling under --executor "
                          "process (timed-out groups retry)")
    cmd.add_argument("--task-retries", type=int, default=2, metavar="N",
                     help="retries per failing group before degrading to the "
                          "serial executor (default 2)")
    cmd.add_argument("--inject-faults", metavar="PLAN",
                     help="deterministic fault injection, e.g. "
                          "'kill@0,delay=0.1@2' or 'seed=7,kills=2' "
                          "(see docs/RELIABILITY.md)")
    cmd.add_argument("--cache-db", metavar="FILE",
                     help="persistent result cache: an sqlite database of "
                          "canonically-fingerprinted group results, consulted "
                          "before decomposing and fed after (works with both "
                          "executors; see docs/CACHING.md)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="IMODEC multiple-output decomposition flow"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="print circuit statistics")
    info.add_argument("input", help="PLA or BLIF file")
    info.set_defaults(func=cmd_info)

    synth = sub.add_parser("synth", help="map a circuit to k-input LUTs")
    synth.add_argument("input", help="PLA or BLIF file")
    _add_flow_options(synth)
    synth.add_argument("--rugged", action="store_true",
                       help="pre-structure with the rugged-style script first")
    synth.add_argument("--structural", action="store_true",
                       help="partial-collapse flow (for circuits too large to collapse)")
    synth.add_argument("--stats", action="store_true",
                       help="print decomposition statistics (m, p)")
    synth.add_argument("--checkpoint", metavar="FILE",
                       help="write completed groups to FILE (process executor; "
                            "resume an interrupted run with --resume FILE)")
    synth.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                       help="flush the checkpoint every N merged groups "
                            "(default 1)")
    synth.add_argument("--resume", metavar="FILE",
                       help="replay the completed groups of a checkpoint file "
                            "(same circuit and flow knobs; byte-identical BLIF)")
    synth.add_argument("-o", "--output", help="write the mapped netlist as BLIF")
    synth.set_defaults(func=cmd_synth)

    batch = sub.add_parser(
        "batch", help="map many circuits through one shared work queue"
    )
    batch.add_argument("inputs", nargs="+", help="PLA or BLIF files")
    _add_flow_options(batch)
    batch.add_argument("-o", "--output-dir", metavar="DIR",
                       help="write each mapped netlist as DIR/<name>.blif")
    batch.set_defaults(func=cmd_batch)

    serve = sub.add_parser(
        "serve",
        help="long-lived HTTP synthesis daemon (see docs/SERVING.md)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8377,
                       help="TCP port (default 8377; 0 picks a free port)")
    serve.add_argument("--jobs", type=int, default=2,
                       help="worker processes shared by all requests")
    serve.add_argument("--runners", type=int, default=2,
                       help="concurrent synthesis runs (request threads "
                            "multiplexed onto the one worker pool)")
    serve.add_argument("--backlog", type=int, default=16,
                       help="admission-queue bound; further submissions "
                            "are rejected with HTTP 503 (default 16)")
    serve.add_argument("--state-dir", metavar="DIR",
                       help="persist job specs and checkpoints under DIR "
                            "so a restarted server resumes in-flight jobs")
    serve.add_argument("--cache-db", metavar="FILE",
                       help="shared persistent result cache "
                            "(see docs/CACHING.md)")
    serve.add_argument("--task-retries", type=int, default=2, metavar="N",
                       help="retries per failing group (default 2)")
    serve.add_argument("--inject-faults", metavar="PLAN",
                       help="deterministic fault plan applied to every job "
                            "(testing only; see docs/RELIABILITY.md)")
    serve.add_argument("--broker", metavar="HOST:PORT",
                       help="delegate decomposition to a remote task broker "
                            "instead of the local worker pool "
                            "(see docs/DISTRIBUTED.md)")
    serve.set_defaults(func=cmd_serve)

    broker = sub.add_parser(
        "broker",
        help="remote-executor task broker (see docs/DISTRIBUTED.md)",
    )
    broker.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    broker.add_argument("--port", type=int, default=8378,
                        help="TCP port (default 8378; 0 picks a free port)")
    broker.add_argument("--cache-db", metavar="FILE",
                        help="shared persistent result cache consulted by "
                             "workers through the broker (see docs/CACHING.md)")
    broker.set_defaults(func=cmd_broker)

    worker = sub.add_parser(
        "worker",
        help="remote decomposition worker (see docs/DISTRIBUTED.md)",
    )
    worker.add_argument("--broker", required=True, metavar="HOST:PORT",
                        help="task-broker address to pull work from")
    worker.add_argument("--name", metavar="NAME",
                        help="worker name reported to the broker "
                             "(default host:pid)")
    worker.add_argument("--poll-seconds", type=float, default=2.0, metavar="S",
                        help="long-poll wait per request for new tasks "
                             "(default 2.0)")
    worker.add_argument("--idle-exit", type=float, default=None, metavar="S",
                        help="exit 0 after S seconds without work "
                             "(default: run until signalled)")
    worker.set_defaults(func=cmd_worker)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except RunInterrupted as exc:
        # Graceful interrupt: checkpoints were flushed on the way out;
        # force the shared pool down so orphaned workers don't linger.
        shutdown_pool(force=True)
        print(f"repro: interrupted: {exc}", file=sys.stderr)
        return 130
    except KeyboardInterrupt:
        shutdown_pool(force=True)
        print("repro: interrupted", file=sys.stderr)
        return 130
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BudgetExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BackendUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
