"""repro: functional multiple-output decomposition (IMODEC).

A from-scratch reproduction of Wurth, Eckl, Antreich, "Functional
Multiple-Output Decomposition: Theory and an Implicit Algorithm" (DAC 1995),
including every substrate: a BDD package, Boolean function representations,
a Boolean network, a two-level minimizer, MIS-style algebraic optimization,
classical single-output decomposition, the implicit multiple-output
decomposer, variable/output partitioning heuristics, LUT technology mapping
and XC3000 CLB packing, plus generators for the paper's benchmark circuits.

Quickstart::

    from repro import BDD, decompose_multi
    from repro.boolfunc import TruthTable

    bdd = BDD()
    for i in range(5):
        bdd.add_var(f"x{i}")
    f1 = TruthTable.from_function(5, lambda *x: sum(x) % 2 == 1).to_bdd(bdd, range(5))
    f2 = TruthTable.from_function(5, lambda *x: sum(x) >= 3).to_bdd(bdd, range(5))
    result = decompose_multi(bdd, [f1, f2], bs_levels=[0, 1, 2, 3], fs_levels=[4])
    assert result.verify(bdd, [f1, f2])

See README.md for the architecture overview and DESIGN.md / EXPERIMENTS.md
for the experiment-by-experiment reproduction notes.
"""

from repro.bdd import BDD, Function
from repro.boolfunc import Cube, Sop, TruthTable
from repro.decompose import Partition, SingleDecomposition, decompose_single
from repro.errors import (
    BudgetExceeded,
    DecompositionError,
    ReproError,
    VerificationError,
)
from repro.imodec import MultiOutputDecomposition, SharedFunction, decompose_multi
from repro.mapping import FlowConfig, FlowResult, pack_xc3000, synthesize
from repro.network import LogicNode, Network, collapse

__version__ = "1.1.0"

__all__ = [
    "BDD",
    "BudgetExceeded",
    "Cube",
    "DecompositionError",
    "FlowConfig",
    "FlowResult",
    "Function",
    "LogicNode",
    "MultiOutputDecomposition",
    "Network",
    "Partition",
    "ReproError",
    "SharedFunction",
    "SingleDecomposition",
    "Sop",
    "TruthTable",
    "VerificationError",
    "collapse",
    "decompose_multi",
    "decompose_single",
    "pack_xc3000",
    "synthesize",
]
