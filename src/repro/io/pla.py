"""Espresso-format PLA reader and writer.

Supports the common subset used by the MCNC two-level benchmarks: ``.i``,
``.o``, ``.ilb``, ``.ob``, ``.p``, ``.type fd|f|fr``, cube lines and ``.e``.
A PLA describes a multi-output SOP; it is returned as a single-level
:class:`~repro.network.network.Network` (one node per output), which the
synthesis flow can then collapse or optimize like any other network.

Only the onset semantics are kept: output character ``1`` puts the cube in
that output's cover, everything else (``0``, ``-``, ``~``) does not.  The
``fd``-type don't-care outputs are thus treated as offset, the conventional
completely-specified reading used when benchmarks are mapped to LUTs.
"""

from __future__ import annotations

from repro.boolfunc.cube import Cube
from repro.boolfunc.sop import Sop
from repro.network.network import Network


class PlaError(ValueError):
    """Malformed PLA input."""


def parse_pla(text: str, name: str = "pla") -> Network:
    """Parse PLA text into a single-level network."""
    num_inputs: int | None = None
    num_outputs: int | None = None
    input_names: list[str] | None = None
    output_names: list[str] | None = None
    cubes: list[tuple[str, str]] = []

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            keyword = parts[0]
            if keyword == ".i":
                num_inputs = int(parts[1])
            elif keyword == ".o":
                num_outputs = int(parts[1])
            elif keyword == ".ilb":
                input_names = parts[1:]
            elif keyword == ".ob":
                output_names = parts[1:]
            elif keyword in (".p", ".type", ".phase", ".pair"):
                continue
            elif keyword == ".e" or keyword == ".end":
                break
            else:
                raise PlaError(f"unsupported PLA directive {keyword!r}")
            continue
        parts = line.split()
        if len(parts) == 2:
            in_part, out_part = parts
        elif num_inputs is not None and len(parts) == 1:
            in_part = line[:num_inputs]
            out_part = line[num_inputs:]
        else:
            in_part = "".join(parts[:-1])
            out_part = parts[-1]
        cubes.append((in_part, out_part))

    if num_inputs is None or num_outputs is None:
        raise PlaError("missing .i or .o header")
    if input_names is None:
        input_names = [f"x{i}" for i in range(num_inputs)]
    if output_names is None:
        output_names = [f"f{i}" for i in range(num_outputs)]
    if len(input_names) != num_inputs or len(output_names) != num_outputs:
        raise PlaError("name list length does not match .i/.o")

    covers: list[list[Cube]] = [[] for _ in range(num_outputs)]
    for in_part, out_part in cubes:
        if len(in_part) != num_inputs or len(out_part) != num_outputs:
            raise PlaError(f"cube {in_part} {out_part}: wrong field width")
        cube = Cube.from_string(in_part)
        for k, ch in enumerate(out_part):
            if ch == "1":
                covers[k].append(cube)
            elif ch not in "0-~234":
                raise PlaError(f"bad output character {ch!r}")

    network = Network(name)
    for in_name in input_names:
        network.add_input(in_name)
    for k, out_name in enumerate(output_names):
        network.add_node(out_name, input_names, Sop(num_inputs, covers[k]))
    network.set_outputs(output_names)
    return network


def write_pla(network: Network) -> str:
    """Write a single-level network (every node reads only primary inputs) as PLA."""
    for node in network.nodes.values():
        if node.name not in network.outputs:
            raise ValueError("PLA export requires a flat, outputs-only network")
        if any(f not in network.inputs for f in node.fanins):
            raise ValueError(f"node {node.name!r} reads internal signals")

    inputs = list(network.inputs)
    outputs = list(network.outputs)
    index = {name: i for i, name in enumerate(inputs)}

    rows: dict[str, set[str]] = {}
    for out_name in outputs:
        node = network.nodes[out_name]
        for cube in node.cover.cubes:
            lits = cube.literals()
            global_lits = {index[node.fanins[j]]: pol for j, pol in lits.items()}
            text = "".join(
                "1" if global_lits.get(i) is True else "0" if global_lits.get(i) is False else "-"
                for i in range(len(inputs))
            )
            rows.setdefault(text, set()).add(out_name)

    lines = [
        f".i {len(inputs)}",
        f".o {len(outputs)}",
        ".ilb " + " ".join(inputs),
        ".ob " + " ".join(outputs),
        f".p {len(rows)}",
    ]
    for text in sorted(rows):
        out_field = "".join("1" if o in rows[text] else "0" for o in outputs)
        lines.append(f"{text} {out_field}")
    lines.append(".e")
    return "\n".join(lines) + "\n"
