"""BLIF reader and writer (combinational subset).

Supports ``.model``, ``.inputs``, ``.outputs``, ``.names`` (with ``-``/``0``/
``1`` input plane and single-output ``0``/``1`` plane), line continuations
with ``\\`` and comments with ``#``.  Latches and subcircuits are rejected --
the paper's flow, like ours, is purely combinational.
"""

from __future__ import annotations

from repro.boolfunc.cube import Cube
from repro.boolfunc.sop import Sop
from repro.network.network import Network


class BlifError(ValueError):
    """Malformed BLIF input."""


def _logical_lines(text: str):
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        line = (pending + line).strip()
        pending = ""
        if line:
            yield line
    if pending.strip():
        yield pending.strip()


def parse_blif(text: str) -> Network:
    """Parse combinational BLIF text into a network."""
    network: Network | None = None
    inputs: list[str] = []
    outputs: list[str] = []
    # collected .names sections: (signals, rows)
    tables: list[tuple[list[str], list[tuple[str, str]]]] = []
    current: tuple[list[str], list[tuple[str, str]]] | None = None
    model_name = "blif"

    for line in _logical_lines(text):
        if line.startswith("."):
            parts = line.split()
            keyword = parts[0]
            if keyword == ".model":
                model_name = parts[1] if len(parts) > 1 else "blif"
            elif keyword == ".inputs":
                inputs.extend(parts[1:])
                current = None
            elif keyword == ".outputs":
                outputs.extend(parts[1:])
                current = None
            elif keyword == ".names":
                if len(parts) < 2:
                    raise BlifError(".names needs at least an output signal")
                current = (parts[1:], [])
                tables.append(current)
            elif keyword == ".end":
                break
            elif keyword in (".latch", ".subckt", ".gate"):
                raise BlifError(f"{keyword} is not supported (combinational only)")
            else:
                raise BlifError(f"unsupported BLIF directive {keyword!r}")
            continue
        if current is None:
            raise BlifError(f"table row {line!r} outside a .names section")
        parts = line.split()
        signals = current[0]
        num_fanins = len(signals) - 1
        if num_fanins == 0:
            if len(parts) != 1 or parts[0] not in "01":
                raise BlifError(f"bad constant row {line!r}")
            current[1].append(("", parts[0]))
        else:
            if len(parts) != 2:
                raise BlifError(f"bad table row {line!r}")
            current[1].append((parts[0], parts[1]))

    network = Network(model_name)
    for name in inputs:
        network.add_input(name)

    # .names sections may appear in any order; add in dependency order.
    pending = {t[0][-1]: t for t in tables}
    defined = set(inputs)
    progress = True
    while pending and progress:
        progress = False
        for out_name in list(pending):
            signals, rows = pending[out_name]
            fanins = signals[:-1]
            if any(f not in defined for f in fanins):
                continue
            cubes = []
            for in_part, out_ch in rows:
                if len(in_part) != len(fanins):
                    raise BlifError(f"row width mismatch in .names {out_name}")
                cubes.append((Cube.from_string(in_part) if fanins else Cube.tautology(0), out_ch))
            onset = [c for c, ch in cubes if ch == "1"]
            offset = [c for c, ch in cubes if ch == "0"]
            if onset and offset:
                raise BlifError(f".names {out_name} mixes onset and offset rows")
            if offset:
                # offset-specified table: complement via truth table (small n)
                if len(fanins) > 16:
                    raise BlifError("offset-specified table too wide to complement")
                off = Sop(len(fanins), offset).to_truthtable()
                cover = Sop.from_truthtable(~off)
            else:
                cover = Sop(len(fanins), onset)
            network.add_node(out_name, fanins, cover)
            defined.add(out_name)
            del pending[out_name]
            progress = True
    if pending:
        raise BlifError(f"undefined or cyclic signals: {sorted(pending)}")

    network.set_outputs(outputs)
    return network


def write_blif(network: Network) -> str:
    """Serialize a network as BLIF."""
    lines = [f".model {network.name}"]
    lines.append(".inputs " + " ".join(network.inputs))
    lines.append(".outputs " + " ".join(network.outputs))
    for name in network.topological_order():
        node = network.nodes[name]
        lines.append(".names " + " ".join([*node.fanins, name]))
        if not node.fanins:
            if node.cover.evaluate(0):
                lines.append("1")
            continue
        for cube in node.cover.cubes:
            lines.append(f"{cube} 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"
