"""File I/O: PLA and BLIF readers/writers.

The paper's benchmarks are MCNC PLA files and ISCAS/MCNC BLIF netlists.
These parsers let the genuine files be dropped into the benchmark registry;
the writers export decomposed/mapped netlists for inspection by other tools.

:func:`parse_network` is the format-sniffing front door shared by the CLI
(which reads files) and the server (which receives circuit text over
HTTP): given raw text and an optional explicit format it dispatches to
the right parser, or raises a one-line :class:`ValueError`.
"""

from __future__ import annotations

from repro.io.blif import parse_blif, write_blif
from repro.io.pla import parse_pla, write_pla

#: First tokens that identify BLIF content when no format is given.
_BLIF_TOKENS = {".model", ".inputs", ".outputs", ".names", ".exdc"}


def parse_network(text: str, name: str = "network", fmt: str | None = None):
    """Parse circuit ``text`` as PLA or BLIF, sniffing when ``fmt`` is None.

    ``fmt`` may be ``"pla"`` or ``"blif"`` to skip sniffing (an explicit
    file suffix or wire-format field is authoritative -- in particular a
    BLIF file beginning with ``.inputs`` must never be mis-sniffed as PLA,
    since both formats start with ``.i``...).  ``name`` names the network
    for PLA sources, which carry no name of their own.  Unrecognizable
    content or an unknown ``fmt`` raises a one-line :class:`ValueError`.
    """
    if fmt is not None:
        if fmt == "pla":
            return parse_pla(text, name=name)
        if fmt == "blif":
            return parse_blif(text)
        raise ValueError(f"unknown circuit format {fmt!r} (have: pla, blif)")
    first_token = text.lstrip().split(None, 1)[0] if text.strip() else ""
    if first_token == ".i":
        return parse_pla(text, name=name)
    if first_token in _BLIF_TOKENS:
        return parse_blif(text)
    raise ValueError(
        "cannot determine input format "
        "(expected a .pla or .blif file, or PLA/BLIF content)"
    )


__all__ = [
    "parse_blif",
    "parse_network",
    "parse_pla",
    "write_blif",
    "write_pla",
]
