"""File I/O: PLA and BLIF readers/writers.

The paper's benchmarks are MCNC PLA files and ISCAS/MCNC BLIF netlists.
These parsers let the genuine files be dropped into the benchmark registry;
the writers export decomposed/mapped netlists for inspection by other tools.
"""

from repro.io.blif import parse_blif, write_blif
from repro.io.pla import parse_pla, write_pla

__all__ = ["parse_blif", "parse_pla", "write_blif", "write_pla"]
