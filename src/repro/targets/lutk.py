"""Generic ``lut-k`` targets: plain k-input LUT cost for any k >= 3.

``lut-4`` .. ``lut-6`` are the ROADMAP item-5 sweep targets; the class
admits any k >= 3 (k = 3 is the Shannon-mux floor) so existing non-default
``FlowConfig.k`` values keep working through the target seam.  Cost is the
LUT count (every logic cell is one LUT, constants are free); ``lut-4``
additionally prices networks in XC4000 CLBs via
:func:`repro.mapping.xc4000.pack_xc4000` (two 4-input generators plus the
H-triple combiner per CLB), which is what makes the k = 4 column of the
sweep comparable to the paper's CLB numbers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.targets.base import TargetCost, spec_group_cost

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.engine.worker import NodeSpec
    from repro.network.network import Network


class LutTarget:
    """k-input LUT cost model (``lut-<k>``)."""

    def __init__(self, k: int) -> None:
        """A target whose single cell is one ``k``-input LUT."""
        if k < 3:
            raise ValueError("lut-k targets need k >= 3 (the Shannon mux)")
        self.k = k
        self.name = f"lut-{k}"

    def feasible(self, num_inputs: int) -> bool:
        """A function fits one LUT when its support fits the inputs."""
        return num_inputs <= self.k

    def lut_cost(self, num_inputs: int) -> int:
        """Unit cost per LUT, independent of how many inputs it uses."""
        return 1

    def candidate_key(
        self, progressing: Sequence[int], num_functions: int, g_inputs: int
    ) -> tuple:
        """Same ranking as the reference target: progress, q, g-inputs.

        LUT count tracks q + composition work directly, so the historical
        tuple is also the right LUT-minimizing order -- and keeping it
        identical means ``lut-5`` reproduces the ``xc3000-clb`` network
        exactly (only the packing/pricing differs).
        """
        return (0 if progressing else 1, num_functions, g_inputs)

    def group_cost(self, nodes: Sequence["NodeSpec"]) -> tuple:
        """LUT count first, fanin volume as the deterministic refiner."""
        return spec_group_cost(nodes, pair_fanin=None)

    def network_cost(self, network: "Network") -> TargetCost:
        """LUT count; for k = 4 also the XC4000 CLB packing."""
        from repro.mapping.lut import lut_count

        luts = lut_count(network)
        if self.k == 4:
            from repro.mapping.xc4000 import pack_xc4000

            packing = pack_xc4000(network, k=self.k)
            return TargetCost(
                luts=luts,
                units=packing.num_clbs,
                unit_name="XC4000 CLB",
                detail=(
                    f"{len(packing.triples)} triples, "
                    f"{len(packing.pairs)} paired, "
                    f"{len(packing.singles)} single"
                ),
            )
        return TargetCost(luts=luts, units=luts, unit_name="LUT")

    def emit(self, network: "Network") -> str:
        """BLIF text (all shipped targets emit BLIF)."""
        from repro.io.blif import write_blif

        return write_blif(network)
