"""The paper's cost model: Xilinx XC3000 CLBs (the reference target).

``xc3000-clb`` is the target the flow was historically hardwired to: 5-input
LUT feasibility, the scorer-race ranking tuple of
:class:`repro.engine.policies.LadderPeelPolicy`, and
:func:`repro.mapping.xc3000.pack_xc3000` CLB packing for the final count.
It is the **byte-identity reference**: a run with the default configuration
must emit exactly the BLIF the pre-target-seam flow emitted, which pins
every method here to the historical formulas (see ``docs/TARGETS.md``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.targets.base import TargetCost, spec_group_cost

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.engine.worker import NodeSpec
    from repro.network.network import Network


class Xc3000Target:
    """XC3000 CLB cost model (k = 5, two <=4-input functions per CLB)."""

    name = "xc3000-clb"
    k = 5

    #: Per-function input limit when two functions share one CLB.
    pair_fanin = 4

    def feasible(self, num_inputs: int) -> bool:
        """One function generator hosts up to 5 inputs."""
        return num_inputs <= self.k

    def lut_cost(self, num_inputs: int) -> int:
        """Every LUT occupies (at worst) one CLB half; constants are free."""
        return 1

    def candidate_key(
        self, progressing: Sequence[int], num_functions: int, g_inputs: int
    ) -> tuple:
        """The historical ranking: progress, then q, then g-inputs.

        This tuple is byte-identity-critical -- it is exactly the key the
        pre-seam ladder-peel policy compared candidate decompositions by.
        """
        return (0 if progressing else 1, num_functions, g_inputs)

    def group_cost(self, nodes: Sequence["NodeSpec"]) -> tuple:
        """CLB lower bound first (pairable <=4-input cells share CLBs)."""
        return spec_group_cost(nodes, pair_fanin=self.pair_fanin)

    def network_cost(self, network: "Network") -> TargetCost:
        """Exact CLB count via maximum matching (:func:`pack_xc3000`)."""
        from repro.mapping.lut import lut_count
        from repro.mapping.xc3000 import pack_xc3000

        packing = pack_xc3000(network, k=self.k, pair_fanin=self.pair_fanin)
        return TargetCost(
            luts=lut_count(network),
            units=packing.num_clbs,
            unit_name="XC3000 CLB",
            detail=(
                f"{len(packing.pairs)} paired, {len(packing.singles)} single"
            ),
        )

    def emit(self, network: "Network") -> str:
        """BLIF text, byte-identical to the historical emitter."""
        from repro.io.blif import write_blif

        return write_blif(network)
