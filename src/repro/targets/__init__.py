"""Pluggable technology targets: the flow's cost-model seam.

A :class:`~repro.targets.base.TechTarget` answers the three
technology-specific questions of the flow -- feasibility (when a function
becomes one cell), cost (which candidate decomposition / mapped group /
network is cheaper) and emission -- behind one protocol, so the
decomposition stack (policies, emitter, executors, cache, CLI, server)
never hardcodes XC3000 CLBs again.  See ``docs/TARGETS.md``.

Registry
--------

- ``xc3000-clb`` -- the paper's cost model and the byte-identity
  reference (k = 5; :mod:`repro.targets.xc3000`);
- ``lut-<k>`` -- plain k-input LUT cost for any k >= 3, with XC4000 CLB
  pricing at k = 4 (:mod:`repro.targets.lutk`);
- ``auto`` -- resolver pseudo-target: ``xc3000-clb`` when k is 5 (or
  unset), ``lut-<k>`` otherwise, reproducing the historical behaviour of
  a bare ``--k``.

:func:`make_target` builds an instance from a name;
:func:`resolve_target` additionally reconciles the name with an optional
explicit ``k`` (the CLI's ``--target`` x ``--k`` matrix).  Unknown names
raise a one-line :class:`ValueError` (exit code 2 from the CLI).
"""

from __future__ import annotations

import re

from repro.targets.base import TargetCost, TechTarget, spec_group_cost
from repro.targets.lutk import LutTarget
from repro.targets.xc3000 import Xc3000Target

#: The resolver pseudo-target accepted by ``FlowConfig.target``.
AUTO_TARGET = "auto"

#: Default k when neither ``--k`` nor a concrete ``--target`` pins one.
DEFAULT_K = 5

#: Concrete target names advertised in help text (``lut-<k>`` admits any
#: k >= 3; these are the ROADMAP item-5 sweep points).
TARGET_NAMES = ("xc3000-clb", "lut-4", "lut-5", "lut-6")

_LUT_K = re.compile(r"^lut-(\d+)$")


def make_target(name: str) -> TechTarget:
    """Build the target registered under ``name``.

    ``lut-<k>`` is parsed generically (any k >= 3); everything else must
    be a registered concrete name.  Raises a one-line :class:`ValueError`
    for unknown names -- ``auto`` is deliberately rejected here, it only
    exists at the resolver layer (:func:`resolve_target`).
    """
    if name == "xc3000-clb":
        return Xc3000Target()
    match = _LUT_K.match(name or "")
    if match:
        k = int(match.group(1))
        if k < 3:
            raise ValueError(
                f"target {name!r} is infeasible: lut-k needs k >= 3 "
                "(k < 3 cannot host the Shannon fallback mux)"
            )
        return LutTarget(k)
    raise ValueError(
        f"unknown target {name!r} (have: {', '.join(TARGET_NAMES)}, "
        "or lut-<k> for any k >= 3)"
    )


def resolve_target(name: str | None, k: int | None) -> tuple[str, int]:
    """Reconcile a target name with an optional explicit ``k``.

    Returns the concrete ``(target_name, k)`` pair:

    - ``auto`` (or None) resolves to ``xc3000-clb`` when k is 5 or unset,
      ``lut-<k>`` otherwise -- the historical meaning of a bare ``--k``;
    - a concrete name pins k to the target's cell width; an explicit
      conflicting ``k`` is a one-line :class:`ValueError` rather than a
      silently ignored knob.
    """
    if name is None or name == AUTO_TARGET:
        k = DEFAULT_K if k is None else k
        return ("xc3000-clb" if k == DEFAULT_K else f"lut-{k}", k)
    target = make_target(name)
    if k is not None and k != target.k:
        raise ValueError(
            f"target {name!r} implies k = {target.k}, "
            f"which contradicts the requested k = {k}"
        )
    return (target.name, target.k)


def report_section(
    target_name: str,
    k: int,
    engine: dict | None = None,
    race_winners: dict[str, int] | None = None,
    cost: TargetCost | None = None,
) -> dict:
    """The ``target`` section of a ``repro-run-report/5`` document.

    Flat scalars describing the run's technology target -- name, cell
    width, the per-target result-cache traffic (pulled from the engine
    counters, so racing can later learn per-shape winners), the priced
    network when one was computed -- plus the ``race_winners`` object
    mapping each racing policy to the number of groups it won.
    """
    section: dict = {"name": target_name, "k": k}
    if engine is not None:
        for key in ("cache_hits", "cache_misses"):
            if key in engine:
                section[key] = engine[key]
    if cost is not None:
        section["luts"] = cost.luts
        section["units"] = cost.units
        section["unit_name"] = cost.unit_name
    if race_winners:
        section["race_winners"] = dict(race_winners)
    return section


__all__ = [
    "AUTO_TARGET",
    "DEFAULT_K",
    "LutTarget",
    "TARGET_NAMES",
    "TargetCost",
    "TechTarget",
    "Xc3000Target",
    "make_target",
    "report_section",
    "resolve_target",
    "spec_group_cost",
]
