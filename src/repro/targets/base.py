"""The technology-target protocol: what a cost model must provide.

The decomposition theory (Defs 1-6, the subset-DP, Lmax/chi) is
target-agnostic -- only three questions are technology-specific:

1. **feasibility** -- when does a function stop decomposing and become one
   cell?  (``feasible``: support fits the cell's input count);
2. **cost** -- which of several candidate decompositions is cheaper?
   (``candidate_key`` ranks in-flight decomposition attempts,
   ``group_cost`` ranks finished sub-networks, ``network_cost`` prices a
   whole mapped network in target units);
3. **emission** -- how does the mapped network leave the flow?
   (``emit``: the netlist adapter; every shipped target emits BLIF).

:class:`TechTarget` is the protocol, :class:`TargetCost` the priced
result.  Implementations live in :mod:`repro.targets.xc3000`
(``xc3000-clb``, the paper's cost model and the byte-identical reference)
and :mod:`repro.targets.lutk` (``lut-k`` for any k >= 3, with XC4000 CLB
packing for k = 4).  The registry and resolver are in
:mod:`repro.targets` (``make_target`` / ``resolve_target``).

Determinism contract: every method must be a pure function of its
arguments -- the executor-equivalence and race-determinism guarantees
(identical BLIF across serial/process executors and repeated runs) rest
on targets never consulting ambient state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.engine.worker import NodeSpec
    from repro.network.network import Network


@dataclass(frozen=True)
class TargetCost:
    """A network priced in target units.

    Attributes:
        luts: logic cells (LUT nodes; constants are free).
        units: cost in the target's native unit (CLBs for the packing
            targets, LUTs otherwise) -- the number Table 2 compares.
        unit_name: what one unit is (``"XC3000 CLB"`` / ``"LUT"`` / ...).
        detail: human-readable packing breakdown, or ``""``.
    """

    luts: int
    units: int
    unit_name: str
    detail: str = ""


@runtime_checkable
class TechTarget(Protocol):
    """Strategy interface of one technology target (cost model).

    ``name`` is the registry id (``FlowConfig.target``), ``k`` the input
    count a single cell admits -- the flow's ``FlowConfig.k`` must equal
    it (see :func:`repro.targets.resolve_target`).
    """

    name: str
    k: int

    def feasible(self, num_inputs: int) -> bool:
        """Whether a function of ``num_inputs`` variables fits one cell."""
        ...

    def lut_cost(self, num_inputs: int) -> int:
        """Cost of one emitted cell with ``num_inputs`` fanins."""
        ...

    def candidate_key(
        self, progressing: Sequence[int], num_functions: int, g_inputs: int
    ) -> tuple:
        """Ranking key of one candidate decomposition (lower is better).

        ``progressing`` are the outputs whose codewidth beat their
        bound-set support, ``num_functions`` the shared pool size q,
        ``g_inputs`` the total composition-function inputs.
        """
        ...

    def group_cost(self, nodes: Sequence["NodeSpec"]) -> tuple:
        """Deterministic cost of one mapped group (race winner selection).

        ``nodes`` is the portable sub-network a worker (or the cache)
        produced; lower tuples win, and ties break by policy order.
        """
        ...

    def network_cost(self, network: "Network") -> TargetCost:
        """Price a whole mapped network in target units (CLI reporting)."""
        ...

    def emit(self, network: "Network") -> str:
        """Serialize the mapped network for this target (BLIF text)."""
        ...


def spec_group_cost(nodes: Sequence["NodeSpec"], pair_fanin: int | None) -> tuple:
    """Shared group-cost helper over portable :class:`NodeSpec` lists.

    Counts logic cells (constants are free) and total fanins; with
    ``pair_fanin`` set, cells of at most that many inputs are candidates
    for CLB pairing, so the leading component is a CLB lower bound
    (``cells - pairable // 2``) instead of the raw cell count.  The tuple
    is strictly ordered: primary units, then cells, then fanin volume --
    deterministic for any two distinct sub-networks of the same shape.
    """
    cells = 0
    fanins = 0
    pairable = 0
    for spec in nodes:
        if spec.constant is not None:
            continue
        cells += 1
        fanins += len(spec.fanins)
        if pair_fanin is not None and len(spec.fanins) <= pair_fanin:
            pairable += 1
    if pair_fanin is None:
        return (cells, fanins)
    return (cells - pairable // 2, cells, fanins)
