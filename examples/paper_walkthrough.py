#!/usr/bin/env python3
"""Walk through the paper's running example (Fig. 2, Examples 1-7).

Recomputes every intermediate object of the paper's Sections 3-6 for the
functions f1 and f2 of Fig. 2 and prints them side by side with the values
stated in the paper.

Run:  python examples/paper_walkthrough.py
"""

from repro.bdd import BDD
from repro.boolfunc import TruthTable
from repro.decompose.charts import DecompositionChart
from repro.decompose.compat import codewidth, local_partition
from repro.imodec.chi import chi_for_output
from repro.imodec.decomposer import decompose_multi
from repro.imodec.globalpart import global_partition, local_classes_as_global_ids
from repro.imodec.zspace import ZSpace

# Fig. 2 chart rows (rows y1y2 = 00, 01, 10, 11; columns x1x2x3 = 000..111).
F1_ROWS = ["00010111", "11111110", "11111110", "00010110"]
F2_ROWS = ["00010101", "01111110", "01111110", "11101010"]


def table_from_chart(rows):
    def fn(x1, x2, x3, y1, y2):
        return rows[int(f"{y1}{y2}", 2)][int(f"{x1}{x2}{x3}", 2)] == "1"

    return TruthTable.from_function(5, fn)


def label(vertex):
    """Vertex index -> the paper's x1x2x3 column label."""
    return "".join("1" if (vertex >> j) & 1 else "0" for j in range(3))


def show_partition(name, partition):
    blocks = [
        "{" + ",".join(sorted(label(v) for v in block)) + "}"
        for block in partition.blocks()
    ]
    print(f"  {name} = {{ {', '.join(blocks)} }}")


def main() -> None:
    t1, t2 = table_from_chart(F1_ROWS), table_from_chart(F2_ROWS)
    bdd = BDD()
    for name in ("x1", "x2", "x3", "y1", "y2"):
        bdd.add_var(name)
    f1 = t1.to_bdd(bdd, range(5))
    f2 = t2.to_bdd(bdd, range(5))
    bs, fs = [0, 1, 2], [3, 4]

    print("=== Fig. 2: decomposition charts ===")
    for name, table in (("f1", t1), ("f2", t2)):
        print(f"{name}:")
        print(DecompositionChart(table, bs).render())

    print("\n=== Example 1: local compatibility partitions ===")
    parts = [local_partition(bdd, f, bs) for f in (f1, f2)]
    show_partition("Pi_f1", parts[0])
    show_partition("Pi_f2", parts[1])
    print(f"  l_1 = {parts[0].num_blocks} -> c_1 = {codewidth(parts[0].num_blocks)}")
    print(f"  l_2 = {parts[1].num_blocks} -> c_2 = {codewidth(parts[1].num_blocks)}")

    print("\n=== Example 3: global partition (paper: G1..G5) ===")
    glob = global_partition(parts)
    show_partition("Pi^ ", glob)
    print(f"  p = {glob.num_blocks}  =>  q >= ceil(ld p) = {(glob.num_blocks - 1).bit_length()}  (Property 1)")

    print("\n=== Example 5: characteristic functions chi_k(z) ===")
    classes = [local_classes_as_global_ids(glob, part) for part in parts]
    zspace = ZSpace(glob.num_blocks)
    for k, cls in enumerate(classes):
        chi = chi_for_output(zspace, [cls], codewidth(parts[k].num_blocks))
        vertices = sorted(
            "".join("1" if m[i] else "0" for i in range(glob.num_blocks))
            for m in zspace.bdd.iter_sat(chi, zspace.levels)
        )
        print(f"  chi_{k+1}: {len(vertices)} preferable functions "
              f"(z1..z5 vertices): {vertices}")

    print("\n=== Example 6: the shared preferable functions (Fig. 5) ===")
    chi1 = chi_for_output(zspace, [classes[0]], 2)
    chi2 = chi_for_output(zspace, [classes[1]], 2)
    both = zspace.bdd.apply_and(chi1, chi2)
    for m in zspace.bdd.iter_sat(both, zspace.levels):
        bits = "".join("1" if m[i] else "0" for i in range(5))
        print(f"  shared z-vertex {bits}  (classes "
              f"{{{','.join(f'G{i+1}' for i in range(5) if m[i])}}})")

    print("\n=== Examples 3/7: the full decomposition (q = 3, d1 shared) ===")
    result = decompose_multi(bdd, [f1, f2], bs, fs)
    print(f"  q = {result.num_functions} decomposition functions "
          f"(individually the outputs would need {result.num_functions_unshared})")
    for i, d in enumerate(result.d_pool):
        users = ",".join(f"f{k+1}" for k in d.users)
        classes_str = ",".join(f"G{g+1}" for g in sorted(d.classes_on))
        print(f"  d{i+1} = union of {{{classes_str}}}, used by {users}")
    assert result.verify(bdd, [f1, f2])
    print("  verified: f1 = g1(d(x), y), f2 = g2(d(x), y)")


if __name__ == "__main__":
    main()
