#!/usr/bin/env python3
"""Inspecting sharing: which decomposition functions do ALU outputs share?

Decomposes the result bits of a 4-bit ALU as one vector and reports, for
each shared decomposition function, the outputs using it -- the paper's
central mechanism made visible.  Also demonstrates Property 1 (the
ceil(ld p) lower bound) and the preferable-function counts of Table 1.

Run:  python examples/alu_sharing.py
"""

from repro.benchcircuits.alu import alu2_syn
from repro.decompose.compat import codewidth
from repro.imodec.counting import (
    count_all_functions,
    count_assignable,
    count_preferable,
)
from repro.imodec.decomposer import decompose_multi
from repro.imodec.globalpart import local_classes_as_global_ids
from repro.network.collapse import collapse
from repro.partitioning.variables import choose_bound_set


def main() -> None:
    net = alu2_syn()
    collapsed = collapse(net)
    bdd = collapsed.bdd
    outputs = [collapsed.output_nodes[name] for name in net.outputs[:4]]  # result bits

    levels = sorted(collapsed.input_levels.values())
    bs, fs = choose_bound_set(bdd, outputs, levels, bound_size=5)
    bs_names = [bdd.var_name(lvl) for lvl in bs]
    print(f"bound set: {bs_names}")

    result = decompose_multi(bdd, outputs, bs, fs)
    print(f"outputs (m):             {result.num_outputs}")
    print(f"local classes (l_k):     {[p.num_blocks for p in result.local_partitions]}")
    print(f"codewidths (c_k):        {result.codewidths}")
    print(f"global classes (p):      {result.num_global_classes}")
    print(f"Property 1 lower bound:  q >= {result.lower_bound()}")
    print(f"functions used (q):      {result.num_functions} "
          f"(vs {result.num_functions_unshared} without sharing)")

    print("\nsharing map:")
    for i, d in enumerate(result.d_pool):
        users = ", ".join(f"out{k}" for k in d.users)
        print(f"  d{i}: used by [{users}]")

    print("\nTable 1-style counts (per output, empty partial assignment):")
    b = len(bs)
    print(f"  upper bounds: 2^2^b = {count_all_functions(b):.2e}, "
          f"2^p = {count_constructable_str(result.num_global_classes)}")
    for k, part in enumerate(result.local_partitions):
        c_k = codewidth(part.num_blocks)
        if c_k == 0:
            continue
        assignable = count_assignable(part.block_sizes(), c_k)
        classes = local_classes_as_global_ids(result.global_part, part)
        preferable = count_preferable(classes, result.num_global_classes, c_k)
        print(f"  out{k}: l_k = {part.num_blocks:>3}  "
              f"# assignable = {assignable:.3e}  # preferable = {preferable}")

    assert result.verify(bdd, outputs)
    print("\nverified: every output reconstructs exactly from its g and d's")


def count_constructable_str(p: int) -> str:
    from repro.imodec.counting import count_constructable

    return f"{count_constructable(p):.2e}" if p > 40 else str(count_constructable(p))


if __name__ == "__main__":
    main()
