#!/usr/bin/env python3
"""End-to-end synthesis of a user-supplied PLA.

Parses an espresso-format PLA, pre-structures it with the rugged-style
script (sweep, eliminate, extraction, simplify), maps it node-wise to
5-input LUTs with multiple-output decomposition, packs XC3000 CLBs, and
exports BLIF.  This is the path a user with real MCNC files would take.

Run:  python examples/custom_pla.py
"""

from repro.algebraic.rugged import rugged
from repro.io.blif import write_blif
from repro.io.pla import parse_pla
from repro.mapping.flow import FlowConfig, verify_flow_sim
from repro.mapping.structural import synthesize_structural
from repro.mapping.xc3000 import pack_xc3000
from repro.network.stats import network_stats

# A small two-output controller: both outputs share product terms.
PLA_TEXT = """\
.i 9
.o 3
.ilb a b c d e f g h i
.ob u v w
.p 8
11-0----- 110
--110--1- 011
1--1--1-- 100
-011---0- 010
---11--11 101
0--0-11-- 011
-1--0--00 110
---1-01-1 001
.e
"""


def main() -> None:
    net = parse_pla(PLA_TEXT, name="controller")
    reference = net.copy()
    print("flat PLA:         ", network_stats(net))

    rugged(net)
    print("after rugged:     ", network_stats(net))

    result = synthesize_structural(net, FlowConfig(k=5, mode="multi"))
    print("after LUT mapping:", network_stats(result.network))
    assert verify_flow_sim(reference, result), "mapped netlist must be equivalent"

    packing = pack_xc3000(result.network)
    print(f"XC3000 packing:    {packing.num_clbs} CLBs "
          f"({len(packing.pairs)} paired, {len(packing.singles)} single)")

    print("\nmapped netlist (BLIF):")
    print(write_blif(result.network))


if __name__ == "__main__":
    main()
