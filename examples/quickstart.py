#!/usr/bin/env python3
"""Quickstart: decompose a small multiple-output function with IMODEC.

Decomposes the two outputs of a 6-input adder slice with a shared bound set,
prints the shared decomposition functions, and verifies the decomposition by
exact BDD composition.

Run:  python examples/quickstart.py
"""

from repro import BDD, decompose_multi
from repro.boolfunc import TruthTable


def main() -> None:
    # Two outputs of a 3+3-bit adder: sum bit 1 and carry into bit 2.
    def sum1(a0, a1, a2, b0, b1, b2):
        return bool((((a0 + 2 * a1 + 4 * a2) + (b0 + 2 * b1 + 4 * b2)) >> 1) & 1)

    def carry2(a0, a1, a2, b0, b1, b2):
        return bool((((a0 + 2 * a1) + (b0 + 2 * b1)) >> 2) & 1)

    bdd = BDD()
    names = ["a0", "a1", "a2", "b0", "b1", "b2"]
    for name in names:
        bdd.add_var(name)

    f1 = TruthTable.from_function(6, sum1).to_bdd(bdd, range(6))
    f2 = TruthTable.from_function(6, carry2).to_bdd(bdd, range(6))

    # Bound set = {a0, a1, b0, b1}; free set = {a2, b2}.
    result = decompose_multi(bdd, [f1, f2], bs_levels=[0, 1, 3, 4], fs_levels=[2, 5])

    print("multiple-output decomposition of (sum1, carry2)")
    print(f"  local classes per output (l_k): "
          f"{[p.num_blocks for p in result.local_partitions]}")
    print(f"  codewidths (c_k):               {result.codewidths}")
    print(f"  global classes (p):             {result.num_global_classes}")
    print(f"  lower bound ceil(ld p) <= q:    {result.lower_bound()}")
    print(f"  decomposition functions (q):    {result.num_functions} "
          f"(unshared would need {result.num_functions_unshared})")
    for i, d in enumerate(result.d_pool):
        used_by = ", ".join(f"f{k+1}" for k in d.users)
        print(f"  d{i+1}: onset classes {sorted(d.classes_on)}, used by {used_by}")
        print(f"       minterms over (a0,a1,b0,b1): {sorted(d.table.minterms())}")

    assert result.verify(bdd, [f1, f2]), "decomposition must be exact"
    print("verified: f_k(x, y) == g_k(d(x), y) for every output")


if __name__ == "__main__":
    main()
