#!/usr/bin/env python3
"""Optimization passes and independent verification.

Builds a redundant controller network, then walks it through the
technology-independent passes -- sweep, algebraic extraction, don't-care
full_simplify, exact two-level minimization of one node -- checking
equivalence after every step with the BDD-based checker (which produces a
counterexample on any mismatch).

Run:  python examples/optimize_and_verify.py
"""

from repro.algebraic.extract import extract_kernels
from repro.boolfunc.sop import Sop
from repro.dontcare.simplify import full_simplify
from repro.network.network import Network
from repro.network.stats import network_stats
from repro.network.sweep import sweep
from repro.twolevel.exact import exact_minimize_sop
from repro.verify import check_equivalence


def build_controller() -> Network:
    """A small controller with deliberate redundancy and shared kernels."""
    net = Network("ctl")
    for name in ("a", "b", "c", "d", "e"):
        net.add_input(name)
    # encoder pair with an unproducible combination (t1=1 forces t2=1)
    net.add_node("t1", ["a", "b"], Sop.from_strings(2, ["11"]))
    net.add_node("t2", ["a", "b"], Sop.from_strings(2, ["1-", "-1"]))
    # consumer distinguishing the impossible combination
    net.add_node("u", ["t1", "t2"], Sop.from_strings(2, ["10", "01"]))
    # two outputs sharing the kernel (c + d)
    net.add_node("f", ["u", "c", "d"], Sop.from_strings(3, ["11-", "1-1"]))
    net.add_node("g", ["e", "c", "d"], Sop.from_strings(3, ["11-", "1-1"]))
    # dead logic
    net.add_node("dead", ["a", "e"], Sop.from_strings(2, ["11"]))
    net.set_outputs(["f", "g"])
    return net


def step(name: str, net: Network, reference: Network) -> None:
    result = check_equivalence(reference, net)
    status = "equivalent" if result else f"MISMATCH on {result.failing_output}"
    print(f"{name:<18} {network_stats(net)}  [{status}, {result.method}]")
    result.expect(f"{name} broke equivalence")


def main() -> None:
    net = build_controller()
    reference = net.copy()
    print(f"{'initial':<18} {network_stats(net)}")

    sweep(net)
    step("sweep", net, reference)

    created = extract_kernels(net)
    step(f"extract ({created} kernels)", net, reference)

    saved = full_simplify(net)
    step(f"full_simplify (-{saved} lits)", net, reference)

    # exact two-level minimization of every small node cover
    for name in list(net.nodes):
        node = net.nodes[name]
        if 0 < node.cover.num_vars <= 6:
            minimized = exact_minimize_sop(node.cover)
            if len(minimized) < len(node.cover.cubes):
                net.replace_cover(name, node.fanins, minimized)
    step("exact minimize", net, reference)

    print("\nall passes verified against the original network")


if __name__ == "__main__":
    main()
