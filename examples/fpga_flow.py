#!/usr/bin/env python3
"""Full FPGA synthesis flow: benchmark circuits to Xilinx XC3000 CLBs.

Runs the paper's central experiment on a handful of benchmark circuits:
collapse, multiple-output decomposition (IMODEC mode) versus classical
single-output decomposition, LUT mapping and CLB packing, then prints a
Table 2-style comparison.

Run:  python examples/fpga_flow.py
"""

import time

from repro.benchcircuits import get_circuit
from repro.mapping.flow import FlowConfig, synthesize, verify_flow
from repro.mapping.xc3000 import pack_xc3000

CIRCUITS = ["rd73", "rd84", "z4ml", "f51m", "5xp1", "clip", "9sym"]


def main() -> None:
    print(f"{'net':8} {'m/p':>6} {'IMODEC':>7} {'Single':>7} {'save':>6} {'CPU/s':>6}")
    total_multi = total_single = 0
    for name in CIRCUITS:
        net = get_circuit(name).build()
        start = time.perf_counter()
        multi = synthesize(net, FlowConfig(k=5, mode="multi"))
        elapsed = time.perf_counter() - start
        single = synthesize(net, FlowConfig(k=5, mode="single"))
        assert verify_flow(net, multi), f"{name}: multi-output flow not equivalent"
        assert verify_flow(net, single), f"{name}: single-output flow not equivalent"
        clb_multi = pack_xc3000(multi.network).num_clbs
        clb_single = pack_xc3000(single.network).num_clbs
        total_multi += clb_multi
        total_single += clb_single
        saving = 100.0 * (1 - clb_multi / clb_single) if clb_single else 0.0
        print(
            f"{name:8} {multi.max_group_outputs}/{multi.max_globals:>4} "
            f"{clb_multi:>7} {clb_single:>7} {saving:>5.0f}% {elapsed:>6.1f}"
        )
    saving = 100.0 * (1 - total_multi / total_single)
    print(f"{'total':8} {'':>6} {total_multi:>7} {total_single:>7} {saving:>5.0f}%")
    print("\n(The paper reports a 38% average CLB reduction over the full "
          "MCNC set; see EXPERIMENTS.md for the complete comparison.)")


if __name__ == "__main__":
    main()
